"""Tests for pattern generators [S1-S3, G1-G2]."""

import pytest

from repro.errors import PatternError
from repro.pattern import (
    are_isomorphic,
    canonical_code,
    generate_all_edge_induced,
    generate_all_vertex_induced,
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
    generate_triangle,
)


class TestSpecialPatterns:
    def test_clique_structure(self):
        p = generate_clique(5)
        assert p.num_vertices == 5
        assert p.num_edges == 10

    def test_clique_size_one(self):
        p = generate_clique(1)
        assert p.num_vertices == 1
        assert p.num_edges == 0

    def test_star_structure(self):
        p = generate_star(5)
        assert p.degree(0) == 4
        assert all(p.degree(v) == 1 for v in range(1, 5))

    def test_chain_structure(self):
        p = generate_chain(4)
        assert p.degree_sequence() == [1, 1, 2, 2]

    def test_cycle_structure(self):
        p = generate_cycle(6)
        assert all(p.degree(v) == 2 for v in range(6))

    def test_triangle_is_k3(self):
        assert are_isomorphic(generate_triangle(), generate_clique(3))

    def test_size_validation(self):
        with pytest.raises(PatternError):
            generate_clique(0)
        with pytest.raises(PatternError):
            generate_star(1)
        with pytest.raises(PatternError):
            generate_chain(1)
        with pytest.raises(PatternError):
            generate_cycle(2)


class TestVertexInducedFamilies:
    def test_known_motif_counts(self):
        # Connected graphs on n vertices up to isomorphism: 1, 1, 2, 6, 21.
        assert len(generate_all_vertex_induced(1)) == 1
        assert len(generate_all_vertex_induced(2)) == 1
        assert len(generate_all_vertex_induced(3)) == 2
        assert len(generate_all_vertex_induced(4)) == 6
        assert len(generate_all_vertex_induced(5)) == 21

    def test_all_connected(self):
        assert all(p.is_connected() for p in generate_all_vertex_induced(4))

    def test_all_unique(self):
        codes = [canonical_code(p) for p in generate_all_vertex_induced(4)]
        assert len(codes) == len(set(codes))

    def test_includes_extremes(self):
        motifs = generate_all_vertex_induced(4)
        assert any(are_isomorphic(p, generate_clique(4)) for p in motifs)
        assert any(are_isomorphic(p, generate_chain(4)) for p in motifs)

    def test_size_validation(self):
        with pytest.raises(PatternError):
            generate_all_vertex_induced(0)


class TestEdgeInducedFamilies:
    def test_known_counts(self):
        # Connected graphs with k edges up to isomorphism: 1, 1, 3, 5.
        assert len(generate_all_edge_induced(1)) == 1
        assert len(generate_all_edge_induced(2)) == 1
        assert len(generate_all_edge_induced(3)) == 3
        assert len(generate_all_edge_induced(4)) == 5

    def test_three_edge_family(self):
        fam = generate_all_edge_induced(3)
        shapes = {
            "triangle": generate_clique(3),
            "path4": generate_chain(4),
            "star4": generate_star(4),
        }
        for name, shape in shapes.items():
            assert any(are_isomorphic(p, shape) for p in fam), name

    def test_edge_counts_exact(self):
        assert all(p.num_edges == 3 for p in generate_all_edge_induced(3))

    def test_size_validation(self):
        with pytest.raises(PatternError):
            generate_all_edge_induced(0)
