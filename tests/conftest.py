"""Shared fixtures for the test suite.

The networkx counting oracles now live in :mod:`repro.testing.oracles`
(importable everywhere); do **not** re-grow bare ``from conftest import``
usages — with both ``tests/conftest.py`` and ``benchmarks/conftest.py``
on ``sys.path`` the module name ``conftest`` is ambiguous and whichever
directory pytest touches first shadows the other, killing collection.
"""

from __future__ import annotations

import os

import pytest
from hypothesis import HealthCheck, settings

from repro.graph import DataGraph, erdos_renyi, from_edges, with_random_labels

# Deterministic CI profile: fixed example sequence (derandomize), fewer
# examples, no deadline — shared-runner timing jitter must never flake a
# property test, and a red CI run must reproduce locally byte-for-byte
# with HYPOTHESIS_PROFILE=ci.  Per-test @settings(...) decorators still
# override the fields they set (e.g. max_examples); derandomization
# applies throughout.  CI selects the profile via the HYPOTHESIS_PROFILE
# environment variable (.github/workflows/ci.yml).
settings.register_profile(
    "ci",
    derandomize=True,
    max_examples=20,
    deadline=None,
    suppress_health_check=[HealthCheck.too_slow],
)
settings.load_profile(os.environ.get("HYPOTHESIS_PROFILE", "default"))


@pytest.fixture
def tiny_graph() -> DataGraph:
    """The paper's Figure 6 data graph (7 vertices)."""
    # v1..v7 renamed 0..6: edges from the figure.
    return from_edges(
        [(0, 1), (0, 3), (0, 5), (1, 2), (1, 3), (1, 5), (2, 4), (3, 5), (5, 6), (2, 0)],
        name="figure6",
    )


@pytest.fixture
def random_graph() -> DataGraph:
    return erdos_renyi(40, 0.15, seed=3)


@pytest.fixture
def denser_graph() -> DataGraph:
    return erdos_renyi(30, 0.3, seed=11)


@pytest.fixture
def labeled_graph() -> DataGraph:
    return with_random_labels(erdos_renyi(40, 0.18, seed=7), 4, seed=1)


@pytest.fixture
def triangle_graph() -> DataGraph:
    """K_3 plus a pendant vertex."""
    return from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
