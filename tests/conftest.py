"""Shared fixtures and oracles for the test suite.

The most important tool here is the networkx oracle: for any pattern and
small graph we can compute the exact number of edge-induced (monomorphism)
or vertex-induced (induced-isomorphism) canonical matches independently of
our engine, by dividing raw isomorphism counts by |Aut(pattern)|.
"""

from __future__ import annotations

import networkx as nx
import pytest

from repro.graph import DataGraph, erdos_renyi, from_edges, with_random_labels
from repro.pattern import Pattern, automorphism_count


def pattern_to_nx(p: Pattern) -> "nx.Graph":
    """Regular-edge view of a pattern as a networkx graph."""
    g = nx.Graph()
    g.add_nodes_from(range(p.num_vertices))
    g.add_edges_from(p.edges())
    return g


def nx_count_edge_induced(graph: DataGraph, p: Pattern) -> int:
    """Oracle: canonical edge-induced match count via monomorphisms."""
    gm = nx.algorithms.isomorphism.GraphMatcher(
        graph.to_networkx(), pattern_to_nx(p)
    )
    raw = sum(1 for _ in gm.subgraph_monomorphisms_iter())
    return raw // automorphism_count(p)


def nx_count_vertex_induced(graph: DataGraph, p: Pattern) -> int:
    """Oracle: canonical vertex-induced match count via induced isos."""
    gm = nx.algorithms.isomorphism.GraphMatcher(
        graph.to_networkx(), pattern_to_nx(p)
    )
    raw = sum(1 for _ in gm.subgraph_isomorphisms_iter())
    return raw // automorphism_count(p)


@pytest.fixture
def tiny_graph() -> DataGraph:
    """The paper's Figure 6 data graph (7 vertices)."""
    # v1..v7 renamed 0..6: edges from the figure.
    return from_edges(
        [(0, 1), (0, 3), (0, 5), (1, 2), (1, 3), (1, 5), (2, 4), (3, 5), (5, 6), (2, 0)],
        name="figure6",
    )


@pytest.fixture
def random_graph() -> DataGraph:
    return erdos_renyi(40, 0.15, seed=3)


@pytest.fixture
def denser_graph() -> DataGraph:
    return erdos_renyi(30, 0.3, seed=11)


@pytest.fixture
def labeled_graph() -> DataGraph:
    return with_random_labels(erdos_renyi(40, 0.18, seed=7), 4, seed=1)


@pytest.fixture
def triangle_graph() -> DataGraph:
    """K_3 plus a pendant vertex."""
    return from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
