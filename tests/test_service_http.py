"""Tests for the stdlib HTTP/JSON front (repro.service.http).

Starts a real server on an ephemeral port, speaks real HTTP at it with
urllib, and checks the endpoint surface: query dispatch, stats, health,
error status codes, malformed bodies, and clean shutdown.
"""

from __future__ import annotations

import json
import threading
import urllib.error
import urllib.request

import pytest

from repro.core.session import MiningSession
from repro.graph import barabasi_albert
from repro.pattern import generate_clique
from repro.service import ServiceHTTPServer
from repro.service.service import MiningService, ServiceConfig


@pytest.fixture
def server():
    """A live server on an OS-assigned port, torn down after the test."""
    service = MiningService(ServiceConfig(workers=1, max_wait_ms=1.0))
    graph = barabasi_albert(120, 3, seed=4)
    service.register_graph("g", graph)
    http_server = ServiceHTTPServer("127.0.0.1", 0, service=service)
    thread = threading.Thread(
        target=http_server.serve_forever, daemon=True
    )
    thread.start()
    try:
        yield http_server, graph
    finally:
        http_server.close()
        thread.join(timeout=10.0)
        assert not thread.is_alive()


def _post(server: ServiceHTTPServer, payload, path: str = "/query"):
    host, port = server.address
    body = payload if isinstance(payload, bytes) else json.dumps(payload).encode()
    request = urllib.request.Request(
        f"http://{host}:{port}{path}",
        data=body,
        headers={"Content-Type": "application/json"},
    )
    try:
        with urllib.request.urlopen(request, timeout=30.0) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


def _get(server: ServiceHTTPServer, path: str):
    host, port = server.address
    try:
        with urllib.request.urlopen(
            f"http://{host}:{port}{path}", timeout=30.0
        ) as response:
            return response.status, json.load(response)
    except urllib.error.HTTPError as error:
        return error.code, json.load(error)


class TestHTTPFront:
    def test_count_round_trip(self, server):
        http_server, graph = server
        status, body = _post(
            http_server,
            {"verb": "count", "graph": "g", "pattern": "clique:3"},
        )
        assert status == 200 and body["ok"]
        truth = MiningSession(graph).count(generate_clique(3))
        assert body["result"]["count"] == truth

    def test_stats_endpoint(self, server):
        http_server, _ = server
        _post(
            http_server,
            {"verb": "count", "graph": "g", "pattern": "clique:3"},
        )
        status, body = _get(http_server, "/stats")
        assert status == 200 and body["ok"]
        assert body["result"]["requests"]["count"] >= 1
        assert body["result"]["registry"]["sessions"] == 1

    def test_health_endpoint(self, server):
        http_server, _ = server
        assert _get(http_server, "/health") == (200, {"ok": True})

    def test_error_statuses_propagate(self, server):
        http_server, _ = server
        status, body = _post(
            http_server,
            {"verb": "count", "graph": "no/such.rgx", "pattern": "clique:3"},
        )
        assert status == 404
        assert body["error"]["code"] == "unknown_graph"
        status, body = _post(
            http_server,
            {"verb": "count", "graph": "g", "pattern": "bogus"},
        )
        assert status == 400
        assert body["error"]["code"] == "invalid_pattern"

    def test_malformed_json_is_400(self, server):
        http_server, _ = server
        status, body = _post(http_server, b"{not json")
        assert status == 400
        assert body["error"]["code"] == "invalid_request"

    def test_unknown_endpoint_is_404(self, server):
        http_server, _ = server
        status, body = _get(http_server, "/nope")
        assert status == 404 and body["error"]["code"] == "not_found"
        status, body = _post(http_server, {"verb": "stats"}, path="/other")
        assert status == 404 and body["error"]["code"] == "not_found"

    def test_concurrent_http_requests_fuse(self, server):
        """Parallel HTTP clients coalesce on the shared service loop."""
        http_server, graph = server
        truth = MiningSession(graph).count(generate_clique(3))
        results: list = [None] * 8
        # A window wide enough that all threads land inside it.
        http_server.service.queue.max_wait_ms = 50.0

        def client(i: int) -> None:
            results[i] = _post(
                http_server,
                {"verb": "count", "graph": "g", "pattern": "clique:3"},
            )

        threads = [
            threading.Thread(target=client, args=(i,)) for i in range(8)
        ]
        for thread in threads:
            thread.start()
        for thread in threads:
            thread.join(timeout=30.0)
        for status, body in results:
            assert status == 200
            assert body["result"]["count"] == truth
        batching = http_server.service.stats()["batching"]
        assert batching["fused_requests"] >= 2
        assert batching["deduped_requests"] >= 1


def test_module_main_parser_defaults():
    from repro.service.__main__ import build_parser

    args = build_parser().parse_args([])
    assert args.port == 8765 and args.workers == 2
    args = build_parser().parse_args(["--no-batching", "--port", "0"])
    assert args.no_batching and args.port == 0
