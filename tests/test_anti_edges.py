"""Anti-edge semantics (§4.2): matches must avoid specific edges."""

from itertools import combinations, permutations

from repro.core import count, match
from repro.graph import DataGraph, erdos_renyi, from_edges
from repro.pattern import Pattern, pattern_p8


def brute_force_count(graph: DataGraph, p: Pattern) -> int:
    """Oracle: enumerate injective mappings, filter edges and anti-edges,
    divide by automorphisms (count each subgraph once)."""
    from repro.pattern import automorphism_count

    n = p.num_vertices
    raw = 0
    for vertices in permutations(range(graph.num_vertices), n):
        ok = True
        for u, v in p.edges():
            if not graph.has_edge(vertices[u], vertices[v]):
                ok = False
                break
        if ok:
            for u, v in p.anti_edges():
                if graph.has_edge(vertices[u], vertices[v]):
                    ok = False
                    break
        if ok:
            raw += 1
    return raw // automorphism_count(p)


class TestAntiEdgeSemantics:
    def test_open_wedge(self):
        # Wedge whose endpoints must NOT be connected.
        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        g = erdos_renyi(12, 0.4, seed=1)
        assert count(g, p) == brute_force_count(g, p)

    def test_paper_pattern_pa(self):
        # pa in Figure 3: two unrelated people with two mutual friends =
        # 4-cycle with one anti-diagonal.
        pa = Pattern.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)], anti_edges=[(1, 3)]
        )
        g = erdos_renyi(12, 0.4, seed=2)
        assert count(g, pa) == brute_force_count(g, pa)

    def test_paper_pattern_pb_two_anti_edges(self):
        # pb: 4-cycle with both diagonals anti (vertex-induced square).
        pb = Pattern.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)],
            anti_edges=[(0, 2), (1, 3)],
        )
        g = erdos_renyi(12, 0.4, seed=3)
        assert count(g, pb) == brute_force_count(g, pb)

    def test_p8_chordal_square(self):
        g = erdos_renyi(12, 0.45, seed=4)
        assert count(g, pattern_p8()) == brute_force_count(g, pattern_p8())

    def test_matches_verify_anti_edges(self):
        g = erdos_renyi(14, 0.4, seed=5)
        p = pattern_p8()

        def verify(m):
            for u, v in p.anti_edges():
                assert not g.has_edge(m[u], m[v])

        match(g, p, callback=verify)

    def test_anti_edge_excludes_all_on_complete_graph(self):
        # On K_n every pair is adjacent, so any anti-edge kills all matches.
        from repro.graph import complete_graph

        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        assert count(complete_graph(6), p) == 0

    def test_anti_edge_only_between_noncore(self):
        # Star with anti-edges between leaves: leaves are non-core, the
        # cover must still cover those anti-edges (§4.2).
        p = Pattern.from_edges(
            [(0, 1), (0, 2), (0, 3)], anti_edges=[(1, 2), (2, 3), (1, 3)]
        )
        g = erdos_renyi(12, 0.35, seed=6)
        assert count(g, p) == brute_force_count(g, p)


class TestVertexInducedEquivalence:
    """Theorem 3.1: vertex-induced matches == edge-induced of the closure."""

    def test_wedge(self):
        g = erdos_renyi(15, 0.3, seed=7)
        wedge = Pattern.from_edges([(0, 1), (1, 2)])
        closed = wedge.vertex_induced_closure()
        assert count(g, wedge, edge_induced=False) == count(g, closed)

    def test_cycle4(self):
        from repro.pattern import generate_cycle

        g = erdos_renyi(15, 0.3, seed=8)
        c4 = generate_cycle(4)
        assert count(g, c4, edge_induced=False) == count(
            g, c4.vertex_induced_closure()
        )

    def test_clique_closure_is_identity(self):
        from repro.pattern import generate_clique

        g = erdos_renyi(15, 0.3, seed=9)
        k3 = generate_clique(3)
        assert count(g, k3, edge_induced=False) == count(g, k3)
