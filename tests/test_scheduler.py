"""Scheduler-layer tests: chunk ledgers + dynamic-vs-static parity.

The work-stealing runtime must be invisible in results: counts, callback
multisets and early-termination accounting have to match the sequential
reference no matter how the frontier is chunked or which worker claims
which chunk.  This suite fuzz-pins that across schedules
(``dynamic``/``static``), chunk hints (1 / 2 / default) and the pattern
feature matrix, and unit-tests the shared chunking layer itself
(:mod:`repro.runtime.scheduler`).
"""

from __future__ import annotations

from collections import Counter

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import ExplorationControl, count, match
from repro.graph import barabasi_albert, erdos_renyi, power_law, with_random_labels
from repro.pattern import (
    Pattern,
    generate_chain,
    generate_clique,
    generate_star,
)
from repro.runtime import (
    ChunkLedger,
    parallel_match,
    process_count,
    static_slices,
    weighted_boundaries,
)

CHUNK_HINTS = (1, 2, None)  # None = the auto default
SCHEDULES = ("dynamic", "static")

weights_lists = st.lists(
    st.integers(min_value=0, max_value=50), min_size=0, max_size=60
)
caps = st.integers(min_value=1, max_value=80)


# ----------------------------------------------------------------------
# The shared chunking layer
# ----------------------------------------------------------------------


class TestWeightedBoundaries:
    @given(weights_lists, caps)
    def test_boundaries_partition_and_respect_cap(self, weights, cap):
        bounds = weighted_boundaries(weights, cap)
        assert bounds[0] == 0
        assert bounds[-1] == len(weights)
        assert bounds == sorted(set(bounds))
        for lo, hi in zip(bounds, bounds[1:]):
            total = sum(weights[lo:hi])
            # Every chunk except the last reached the cap; any chunk is
            # minimal — dropping its last element falls below the cap.
            if hi != len(weights):
                assert total >= cap
            if hi - lo > 1:
                assert total - weights[hi - 1] < cap

    @given(weights_lists, caps)
    def test_numpy_path_matches_pure_python(self, weights, cap):
        np = pytest.importorskip("numpy")
        got = weighted_boundaries(np.asarray(weights, dtype=np.int64), cap)
        assert got == weighted_boundaries(weights, cap)

    def test_lone_overweight_element_forms_own_chunk(self):
        assert weighted_boundaries([1, 100, 1, 1], 3) == [0, 2, 4]
        assert weighted_boundaries([100, 1, 1, 1], 3) == [0, 1, 4]


class TestChunkLedger:
    def test_uniform_chunks_cover_everything_once(self):
        ledger = ChunkLedger.build(list(range(100)), chunk_hint=7)
        seen = []
        for i in range(len(ledger)):
            seen.extend(ledger.chunk(i))
        assert seen == list(range(100))
        assert ledger.num_tasks == 100

    def test_weighted_chunks_shrink_around_hubs(self):
        # A mega-hub up front: its chunk must carry few tasks while the
        # uniform tail packs many per chunk.
        weights = [1000] + [1] * 99
        ledger = ChunkLedger.build(
            list(range(100)), weights=weights, chunk_hint=4
        )
        first = ledger.chunk(0)
        assert len(first) == 1  # the hub rides alone
        flat = [v for i in range(len(ledger)) for v in ledger.chunk(i)]
        assert flat == list(range(100))

    def test_auto_cap_targets_chunks_per_worker(self):
        from repro.runtime.scheduler import CHUNKS_PER_WORKER

        ledger = ChunkLedger.build(
            list(range(1024)), weights=[1] * 1024, num_workers=4
        )
        assert len(ledger) == 4 * CHUNKS_PER_WORKER

    def test_bad_chunk_hint_rejected(self):
        with pytest.raises(ValueError):
            ChunkLedger.build(range(10), chunk_hint=0)
        with pytest.raises(ValueError):
            ChunkLedger.build(range(10), weights=[1] * 10, chunk_hint=0)

    def test_empty_order(self):
        ledger = ChunkLedger.build([], weights=[])
        assert len(ledger) == 0
        assert ledger.num_tasks == 0


def test_static_slices_cover_everything_once():
    slices = static_slices(list(range(103)), 4)
    assert len(slices) == 4
    assert sorted(v for s in slices for v in s) == list(range(103))


# ----------------------------------------------------------------------
# Thread-pool parity: dynamic vs static vs sequential reference
# ----------------------------------------------------------------------

seeds = st.integers(min_value=0, max_value=30)


def _fuzz_graph_and_pattern(seed: int):
    """A (graph, pattern, edge_induced) triple sweeping the feature matrix."""
    kind = seed % 6
    if kind == 0:
        return erdos_renyi(50 + seed, 0.12, seed=seed), generate_clique(3), True
    if kind == 1:
        g = with_random_labels(erdos_renyi(45, 0.15, seed=seed), 3, seed=seed)
        p = generate_chain(3)
        p.set_label(0, seed % 3)
        p.set_label(2, (seed + 1) % 3)
        return g, p, True
    if kind == 2:
        # Anti-edge: a path whose endpoints must NOT be adjacent.
        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        return barabasi_albert(40 + seed, 3, seed=seed), p, True
    if kind == 3:
        # Vertex-induced matching (anti-edge completion, Theorem 3.1).
        return erdos_renyi(40 + seed, 0.18, seed=seed), generate_star(3), False
    if kind == 4:
        # Anti-vertex: triangles in no 4-clique (maximal-clique query).
        from repro.mining.cliques import maximal_clique_pattern

        return erdos_renyi(35 + seed, 0.25, seed=seed), maximal_clique_pattern(3), True
    return power_law(60 + seed, gamma=2.0, seed=seed), generate_star(3), True


class TestThreadScheduleParity:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_counts_pin_sequential_reference(self, seed):
        g, p, edge_induced = _fuzz_graph_and_pattern(seed)
        expected = count(g, p, edge_induced=edge_induced, engine="reference")
        for schedule in SCHEDULES:
            for hint in CHUNK_HINTS:
                result = parallel_match(
                    g, p, num_threads=3, edge_induced=edge_induced,
                    schedule=schedule, chunk_hint=hint,
                )
                assert result.matches == expected, (schedule, hint)
                assert result.schedule == schedule

    @given(seeds)
    @settings(max_examples=8, deadline=None)
    def test_callback_multisets_pin_sequential(self, seed):
        g, p, edge_induced = _fuzz_graph_and_pattern(seed)
        sequential: Counter = Counter()
        match(g, p, lambda m: sequential.update([m.mapping]),
              edge_induced=edge_induced, engine="reference")
        for schedule in SCHEDULES:
            for hint in CHUNK_HINTS:
                found: Counter = Counter()

                def cb(m, agg):
                    found.update([m.mapping])

                result = parallel_match(
                    g, p, num_threads=3, callback=cb,
                    edge_induced=edge_induced,
                    schedule=schedule, chunk_hint=hint,
                )
                assert found == sequential, (schedule, hint)
                assert result.matches == sum(found.values())

    @given(seeds, st.sampled_from(SCHEDULES))
    @settings(max_examples=8, deadline=None)
    def test_control_stops_early_and_counts_callbacks(self, seed, schedule):
        g = erdos_renyi(50 + seed, 0.2, seed=seed)
        p = generate_clique(3)
        total = count(g, p, engine="reference")
        if total < 8:
            return
        for hint in CHUNK_HINTS:
            control = ExplorationControl()
            fired = [0]

            def cb(m, agg):
                fired[0] += 1
                if fired[0] >= 3:
                    control.stop()

            result = parallel_match(
                g, p, num_threads=2, callback=cb, control=control,
                schedule=schedule, chunk_hint=hint,
            )
            assert control.stopped
            # The returned count is exactly the callbacks that fired,
            # and the stop landed before full enumeration.
            assert result.matches == fired[0]
            assert result.matches < total

    def test_static_schedule_skips_the_shared_queue(self):
        # Static pre-assignment must still produce per-thread accounting
        # that sums to the total.
        g = erdos_renyi(60, 0.15, seed=5)
        result = parallel_match(
            g, generate_clique(3), num_threads=3, schedule="static"
        )
        assert sum(result.per_thread_matches) == result.matches
        assert result.schedule == "static"

    def test_unknown_schedule_rejected(self):
        g = erdos_renyi(20, 0.3, seed=1)
        with pytest.raises(ValueError):
            parallel_match(g, generate_clique(3), schedule="wishful")
        with pytest.raises(ValueError):
            process_count(g, generate_clique(3), schedule="wishful")
        with pytest.raises(ValueError):
            parallel_match(g, generate_clique(3), chunk_hint=0)

    def test_session_defaults_steer_the_runtime(self):
        from repro.core import MiningSession

        g = erdos_renyi(50, 0.15, seed=9)
        session = MiningSession(g, schedule="static", chunk_hint=2)
        result = parallel_match(session, generate_clique(3), num_threads=2)
        assert result.schedule == "static"
        assert result.matches == count(g, generate_clique(3),
                                       engine="reference")


# ----------------------------------------------------------------------
# Backing-agnostic scheduling: mmap-backed graphs pin the same results
# ----------------------------------------------------------------------


class TestMmapBackedScheduleParity:
    """The work-stealing runtime must be storage-agnostic: a graph
    re-opened from an ``.rgx`` mmap store pins the list-backed
    sequential reference across schedules, engines and share modes."""

    @given(seeds)
    @settings(max_examples=6, deadline=None)
    def test_counts_pin_sequential_reference(self, seed):
        pytest.importorskip("numpy")
        import os
        import tempfile

        from repro.graph import load_mmap, save_mmap

        g, p, edge_induced = _fuzz_graph_and_pattern(seed)
        expected = count(g, p, edge_induced=edge_induced, engine="reference")
        fd, path = tempfile.mkstemp(suffix=".rgx")
        os.close(fd)
        try:
            save_mmap(g, path)
            h = load_mmap(path)
            for schedule in SCHEDULES:
                result = parallel_match(
                    h, p, num_threads=3, edge_induced=edge_induced,
                    schedule=schedule,
                )
                assert result.matches == expected, schedule
            assert process_count(
                h, p, num_processes=2, edge_induced=edge_induced,
                share_mode="mmap",
            ) == expected
        finally:
            os.unlink(path)


# ----------------------------------------------------------------------
# Process-pool parity (slower: real pools — a few pinned cases only)
# ----------------------------------------------------------------------


class TestProcessScheduleParity:
    @pytest.mark.parametrize("schedule", SCHEDULES)
    @pytest.mark.parametrize("hint", [1, None])
    def test_counts_pin_sequential(self, schedule, hint):
        g = power_law(150, gamma=2.0, seed=4)
        p = generate_clique(3)
        expected = count(g, p, engine="reference")
        got = process_count(
            g, p, num_processes=3, schedule=schedule, chunk_hint=hint
        )
        assert got == expected

    def test_labeled_dynamic_pins_sequential(self):
        g = with_random_labels(erdos_renyi(70, 0.12, seed=23), 3, seed=5)
        p = generate_chain(3)
        p.set_label(0, 1)
        p.set_label(2, 2)
        expected = count(g, p, engine="reference")
        for schedule in SCHEDULES:
            assert process_count(
                g, p, num_processes=2, schedule=schedule, chunk_hint=2
            ) == expected
