"""Engine correctness: counts cross-checked against the networkx oracle.

This is the load-bearing test file: every structural claim of the matching
engine (symmetry breaking, matching orders, completion, vertex-induced
closure) is wrong if any count here diverges.
"""

import random

import pytest
from hypothesis import given, settings, strategies as st

from repro.core import count, generate_plan, run_tasks
from repro.graph import erdos_renyi, barabasi_albert, from_edges
from repro.pattern import (
    Pattern,
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
    pattern_p1,
    pattern_p3,
    pattern_p4,
    pattern_p5,
    pattern_p6,
)
from repro.testing.oracles import nx_count_edge_induced, nx_count_vertex_induced

PATTERNS = {
    "edge": generate_clique(2),
    "wedge": generate_star(3),
    "triangle": generate_clique(3),
    "path4": generate_chain(4),
    "star4": generate_star(4),
    "cycle4": generate_cycle(4),
    "diamond": pattern_p1(),
    "k4": generate_clique(4),
    "house": pattern_p3(),
    "tailed-k4": pattern_p4(),
    "bowtie": pattern_p5(),
    "near-k5": pattern_p6(),
    "star5": generate_star(5),
    "cycle5": generate_cycle(5),
}


@pytest.mark.parametrize("name", sorted(PATTERNS))
class TestEdgeInducedAgainstOracle:
    def test_sparse(self, name):
        g = erdos_renyi(35, 0.12, seed=1)
        p = PATTERNS[name]
        assert count(g, p) == nx_count_edge_induced(g, p)

    def test_dense(self, name):
        g = erdos_renyi(22, 0.35, seed=2)
        p = PATTERNS[name]
        assert count(g, p) == nx_count_edge_induced(g, p)

    def test_powerlaw(self, name):
        g = barabasi_albert(40, 3, seed=3)
        p = PATTERNS[name]
        assert count(g, p) == nx_count_edge_induced(g, p)


@pytest.mark.parametrize("name", sorted(PATTERNS))
def test_vertex_induced_against_oracle(name):
    g = erdos_renyi(28, 0.2, seed=4)
    p = PATTERNS[name]
    assert count(g, p, edge_induced=False) == nx_count_vertex_induced(g, p)


class TestSymmetryBreakingInvariant:
    @pytest.mark.parametrize(
        "name", ["triangle", "star4", "cycle4", "k4", "bowtie"]
    )
    def test_unaware_count_is_aut_multiple(self, name):
        from repro.pattern import automorphism_count

        g = erdos_renyi(25, 0.2, seed=5)
        p = PATTERNS[name]
        canonical = count(g, p)
        raw = count(g, p, symmetry_breaking=False)
        assert raw == canonical * automorphism_count(p)


class TestEdgeCases:
    def test_empty_graph(self):
        g = from_edges([], num_vertices=5)
        assert count(g, generate_clique(3)) == 0

    def test_pattern_larger_than_graph(self):
        g = from_edges([(0, 1)])
        assert count(g, generate_clique(4)) == 0

    def test_single_vertex_pattern_counts_vertices(self):
        g = from_edges([(0, 1), (1, 2)], num_vertices=7)
        assert count(g, Pattern(num_vertices=1)) == 7

    def test_single_edge_pattern_counts_edges(self):
        g = erdos_renyi(20, 0.3, seed=6)
        assert count(g, Pattern.from_edges([(0, 1)])) == g.num_edges

    def test_graph_with_isolated_vertices(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=10)
        assert count(g, generate_clique(3)) == 1

    def test_run_tasks_on_subset_of_starts(self):
        g = erdos_renyi(25, 0.25, seed=7)
        ordered, _ = g.degree_ordered()
        plan = generate_plan(generate_clique(3))
        full = run_tasks(ordered, plan, count_only=True)
        split = run_tasks(
            ordered, plan, start_vertices=range(0, 25, 2), count_only=True
        ) + run_tasks(
            ordered, plan, start_vertices=range(1, 25, 2), count_only=True
        )
        assert split == full


class TestRandomizedOracle:
    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=25, deadline=None)
    def test_random_pattern_random_graph(self, seed):
        rng = random.Random(seed)
        n = rng.randint(3, 5)
        edges = []
        # random connected pattern: random tree + extra edges
        for v in range(1, n):
            edges.append((rng.randrange(v), v))
        for u in range(n):
            for v in range(u + 1, n):
                if (u, v) not in edges and rng.random() < 0.3:
                    edges.append((u, v))
        p = Pattern(num_vertices=n, edges=edges)
        g = erdos_renyi(18, 0.25, seed=seed)
        assert count(g, p) == nx_count_edge_induced(g, p)
        assert count(g, p, edge_induced=False) == nx_count_vertex_induced(g, p)
