"""Fused multi-pattern runner: parity, grouping, and parallel aggregate.

The fused runner must be *observationally identical* to sequential
per-pattern execution on the reference interpreter: per-pattern counts,
per-pattern callback order, and batch row multisets, across the full
pattern-feature matrix (labels, edge/vertex-induced, anti-edges,
anti-vertices), for every frontier chunking (1 / 2 / default).  The
census tier's Möbius demultiplexing is additionally pinned against known
closed-form relations, and ``aggregate`` over worker threads must equal
its sequential result for order-insensitive reducers.
"""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    MiningSession,
    MultiPatternPlan,
    count,
    count_many,
    match,
    match_many,
    match_batches_many,
)
from repro.core.multipattern import (
    census_eligible,
    census_transform,
)
from repro.core.engine import EngineStats
from repro.core.session import FUSED_MIN_GROUP
from repro.errors import MatchingError
from repro.graph import erdos_renyi, with_random_labels
from repro.mining.cliques import maximal_clique_pattern
from repro.pattern import (
    Pattern,
    generate_all_vertex_induced,
    generate_chain,
    generate_clique,
    generate_star,
)


def _labeled(p: Pattern, labels: dict[int, int]) -> Pattern:
    for u, lab in labels.items():
        p.set_label(u, lab)
    return p


def _anti_square() -> Pattern:
    p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
    p.add_anti_edge(0, 2)
    p.add_anti_edge(1, 3)
    return p


def _anti_vertex_star() -> Pattern:
    p = generate_star(3)
    p.add_anti_vertex([0, 1])
    return p


# Pattern *sets* (the fused runner's unit of work) spanning the feature
# matrix; each entry is (name, pattern-set factory, count_many kwargs).
PATTERN_SETS = [
    (
        "unlabeled-mix",
        lambda: [generate_clique(3), generate_chain(4), generate_star(3),
                 Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])],
        {},
    ),
    ("3-motifs", lambda: generate_all_vertex_induced(3), {"edge_induced": False}),
    ("4-motifs", lambda: generate_all_vertex_induced(4), {"edge_induced": False}),
    (
        "anti-edges",
        lambda: [_anti_square(), maximal_clique_pattern(3), generate_clique(3)],
        {},
    ),
    (
        "anti-vertices",
        lambda: [_anti_vertex_star(), generate_star(3), generate_chain(3)],
        {},
    ),
    (
        "no-symmetry",
        lambda: [generate_clique(3), generate_chain(3)],
        {"symmetry_breaking": False},
    ),
    (
        "labeled-mixed-pins",
        lambda: [
            _labeled(generate_chain(3), {0: 0, 2: 1}),
            _labeled(generate_chain(3), {0: 1, 2: 0}),
            _labeled(generate_clique(3), {0: 2}),
            generate_chain(3),
        ],
        {},
    ),
    (
        "vertex-induced-labeled",
        lambda: [
            _labeled(generate_star(3), {0: 1}),
            _labeled(generate_chain(3), {1: 0}),
            generate_clique(3),
        ],
        {"edge_induced": False},
    ),
]
SET_IDS = [name for name, _, _ in PATTERN_SETS]


def _graph_for(name: str, seed: int, n: int = 36, p: float = 0.22):
    if "label" in name:
        return with_random_labels(erdos_renyi(n, p, seed=seed), 3, seed=seed)
    return erdos_renyi(n, p, seed=seed)


def _reference_counts(graph, patterns, **kwargs):
    return {p: count(graph, p, engine="reference", **kwargs) for p in patterns}


# ----------------------------------------------------------------------
# Count parity: fused == sequential reference, full feature matrix
# ----------------------------------------------------------------------


class TestFusedCountParity:
    @pytest.mark.parametrize("name,set_fn,kwargs", PATTERN_SETS, ids=SET_IDS)
    @pytest.mark.parametrize("seed", [3, 11])
    def test_fused_matches_reference(self, name, set_fn, kwargs, seed):
        g = _graph_for(name, seed)
        patterns = set_fn()
        expected = _reference_counts(g, patterns, **kwargs)
        session = MiningSession(g)
        assert session.count_many(patterns, engine="fused", **kwargs) == expected
        assert session.count_many(patterns, engine="auto", **kwargs) == expected

    @pytest.mark.parametrize("chunk", [1, 2, None])
    @pytest.mark.parametrize("name,set_fn,kwargs", PATTERN_SETS, ids=SET_IDS)
    def test_frontier_chunks(self, name, set_fn, kwargs, chunk):
        g = _graph_for(name, seed=7)
        patterns = set_fn()
        expected = _reference_counts(g, patterns, **kwargs)
        got = MiningSession(g).count_many(
            patterns, engine="fused", frontier_chunk=chunk, **kwargs
        )
        assert got == expected

    @pytest.mark.parametrize("seed", range(8))
    def test_fuzz_census_subsets(self, seed):
        """Random motif subsets keep the census tier's inversion exact."""
        import random

        rng = random.Random(seed)
        g = erdos_renyi(40, 0.25, seed=seed)
        pool = generate_all_vertex_induced(3) + generate_all_vertex_induced(4)
        patterns = rng.sample(pool, rng.randint(2, len(pool)))
        expected = _reference_counts(g, patterns, edge_induced=False)
        got = MiningSession(g).count_many(
            patterns, edge_induced=False, engine="fused"
        )
        assert got == expected

    def test_legacy_shim_routes_fusion(self):
        g = erdos_renyi(30, 0.25, seed=9)
        patterns = generate_all_vertex_induced(3)
        assert count_many(g, patterns, edge_induced=False) == _reference_counts(
            g, patterns, edge_induced=False
        )


# ----------------------------------------------------------------------
# Callback order and batch parity
# ----------------------------------------------------------------------


class TestFusedCallbackParity:
    @pytest.mark.parametrize("chunk", [1, 2, None])
    @pytest.mark.parametrize(
        "name,set_fn,kwargs",
        [s for s in PATTERN_SETS if s[0] != "no-symmetry"],
        ids=[name for name, _, _ in PATTERN_SETS if name != "no-symmetry"],
    )
    def test_per_pattern_callback_order(self, name, set_fn, kwargs, chunk):
        """Every member's callback sequence equals its standalone run."""
        g = _graph_for(name, seed=5)
        patterns = set_fn()
        collected = [[] for _ in patterns]
        callbacks = [
            (lambda m, bucket=bucket: bucket.append(m.mapping))
            for bucket in collected
        ]
        totals = MiningSession(g).match_many(
            patterns, callbacks, engine="fused", frontier_chunk=chunk, **kwargs
        )
        for i, p in enumerate(patterns):
            expected: list[tuple[int, ...]] = []
            n = match(
                g, p, callback=lambda m: expected.append(m.mapping),
                engine="reference", **kwargs,
            )
            assert collected[i] == expected, f"callback order diverged for {p!r}"
            assert totals[i] == n

    def test_partial_callbacks(self):
        """Members without callbacks count; members with callbacks fire."""
        g = erdos_renyi(32, 0.25, seed=13)
        patterns = [generate_clique(3), generate_chain(3), generate_star(3)]
        seen: list[tuple[int, ...]] = []
        totals = MiningSession(g).match_many(
            patterns, [None, lambda m: seen.append(m.mapping), None],
            engine="fused",
        )
        assert totals == [count(g, p) for p in patterns]
        assert len(seen) == totals[1]

    @pytest.mark.parametrize("chunk", [2, None])
    def test_match_batches_many_row_multisets(self, chunk):
        g = with_random_labels(erdos_renyi(34, 0.25, seed=17), 2, seed=3)
        patterns = [
            generate_clique(3),
            generate_chain(3),
            _labeled(generate_chain(3), {0: 0}),
        ]
        rows = [[] for _ in patterns]
        on_batches = [
            (lambda batch, bucket=bucket: bucket.extend(
                tuple(int(v) for v in row) for row in batch
            ))
            for bucket in rows
        ]
        totals = match_batches_many(
            g, patterns, on_batches, frontier_chunk=chunk, engine="fused"
        )
        for i, p in enumerate(patterns):
            expected: list[tuple[int, ...]] = []
            n = match(
                g, p, callback=lambda m: expected.append(m.mapping),
                engine="reference",
            )
            assert sorted(rows[i]) == sorted(expected)
            assert totals[i] == n == len(rows[i])

    def test_match_many_shim(self):
        g = erdos_renyi(30, 0.25, seed=21)
        patterns = [generate_clique(3), generate_chain(4)]
        assert match_many(g, patterns) == [count(g, p) for p in patterns]


# ----------------------------------------------------------------------
# Grouping, dispatch and error behaviour
# ----------------------------------------------------------------------


class TestMultiPatternPlan:
    def test_unlabeled_patterns_share_one_group(self):
        plans = [
            MiningSession(erdos_renyi(10, 0.3, seed=1)).plan_for(p)
            for p in (generate_clique(3), generate_chain(3), generate_star(3))
        ]
        multi = MultiPatternPlan.build(plans)
        assert multi.groups == ((0, 1, 2),)
        assert multi.group_keys == (None,)
        assert multi.singles == ()

    def test_label_pins_split_groups(self):
        session = MiningSession(
            with_random_labels(erdos_renyi(10, 0.3, seed=2), 3, seed=2)
        )
        fully_pinned = _labeled(generate_chain(3), {0: 0, 1: 1, 2: 1})
        same_pin = _labeled(generate_chain(3), {0: 1, 1: 0, 2: 0})
        wildcard = generate_chain(3)
        plans = [session.plan_for(p) for p in (fully_pinned, same_pin, wildcard)]
        multi = MultiPatternPlan.build(plans, min_group=1)
        keys = {key for key in multi.group_keys}
        # The wildcard pattern seeds from every vertex (key None); the
        # pinned patterns group by their pinned top-label sets.
        assert None in keys
        assert len(multi.groups) >= 2

    def test_min_group_floor(self):
        plans = [
            MiningSession(erdos_renyi(10, 0.3, seed=3)).plan_for(p)
            for p in (generate_clique(3),)
        ]
        multi = MultiPatternPlan.build(plans, min_group=FUSED_MIN_GROUP)
        assert multi.groups == ()
        assert multi.singles == (0,)

    def test_label_index_off_collapses_groups(self):
        session = MiningSession(
            with_random_labels(erdos_renyi(10, 0.3, seed=4), 2, seed=4)
        )
        plans = [
            session.plan_for(p)
            for p in (_labeled(generate_chain(3), {0: 0, 1: 1, 2: 1}),
                      generate_chain(3))
        ]
        multi = MultiPatternPlan.build(plans, label_index=False)
        assert multi.groups == ((0, 1),)
        assert multi.group_keys == (None,)


class TestFusedDispatchErrors:
    def test_fused_requires_no_stats(self):
        g = erdos_renyi(20, 0.3, seed=5)
        with pytest.raises(MatchingError):
            MiningSession(g).count_many(
                [generate_clique(3), generate_chain(3)],
                engine="fused",
                stats=EngineStats(),
            )

    def test_fused_honors_control(self):
        # Control no longer pins the reference interpreter: the fused
        # walker polls it per slice (and members poll it per block).
        from repro.core.callbacks import ExplorationControl

        g = erdos_renyi(20, 0.3, seed=5)
        patterns = [generate_clique(3), generate_chain(3)]
        expected = _reference_counts(g, patterns)
        control = ExplorationControl()
        got = MiningSession(g).count_many(
            patterns, engine="fused", control=control
        )
        assert got == expected
        control.stop()  # a pre-stopped control short-circuits every slice
        got = MiningSession(g).count_many(
            patterns, engine="fused", control=control
        )
        assert all(v == 0 for v in got.values())

    def test_unknown_engine_rejected(self):
        g = erdos_renyi(20, 0.3, seed=5)
        with pytest.raises(ValueError):
            MiningSession(g).count_many([generate_clique(3)], engine="warp")

    def test_callback_count_mismatch(self):
        g = erdos_renyi(20, 0.3, seed=5)
        with pytest.raises(ValueError):
            MiningSession(g).match_many(
                [generate_clique(3), generate_chain(3)], [None]
            )

    def test_stats_fall_back_sequentially_under_auto(self):
        g = erdos_renyi(24, 0.3, seed=6)
        stats = EngineStats()
        patterns = [generate_clique(3), generate_chain(3)]
        got = MiningSession(g).count_many(patterns, stats=stats)
        assert got == _reference_counts(g, patterns)
        assert stats.tasks > 0  # the reference engine actually ran


# ----------------------------------------------------------------------
# Census transform (the Möbius tier) in isolation
# ----------------------------------------------------------------------


class TestCensusTransform:
    def test_triangle_wedge_relation(self):
        """The classic relation: noninduced wedges = induced + 3*triangles."""
        wedge, triangle = generate_chain(3), generate_clique(3)
        transform = census_transform([wedge, triangle])
        assert len(transform.order) == 2
        noninduced = {code: 0 for code, _ in transform.order}
        # Inject N_triangle = 5, N_wedge = 40: I_wedge must be 40 - 3*5.
        for code, pattern in transform.order:
            noninduced[code] = 5 if pattern.num_edges == 3 else 40
        induced = transform.induced_counts(noninduced)
        by_edges = {p.num_edges: induced[c] for c, p in transform.order}
        assert by_edges[3] == 5
        assert by_edges[2] == 40 - 3 * 5

    def test_closure_reaches_complete_graph(self):
        transform = census_transform([generate_chain(4)])
        sizes = sorted(p.num_edges for _, p in transform.order)
        assert sizes[-1] == 6  # K4 tops the 4-vertex lattice
        assert all(p.num_vertices == 4 for _, p in transform.order)

    def test_eligibility(self):
        assert census_eligible(generate_clique(3))
        assert not census_eligible(_labeled(generate_chain(3), {0: 0}))
        assert not census_eligible(_anti_square())
        assert not census_eligible(_anti_vertex_star())
        assert not census_eligible(generate_clique(6))  # above the size cap

    def test_transform_cached_per_session(self):
        g = erdos_renyi(24, 0.3, seed=8)
        session = MiningSession(g)
        patterns = generate_all_vertex_induced(3)
        session.count_many(patterns, edge_induced=False, engine="fused")
        cached = dict(session._census)
        session.count_many(patterns, edge_induced=False, engine="fused")
        assert session._census == cached and len(cached) == 1


# ----------------------------------------------------------------------
# Parallel aggregate determinism
# ----------------------------------------------------------------------


class TestParallelAggregate:
    @pytest.mark.parametrize("seed", [5, 19])
    def test_threaded_sum_equals_sequential(self, seed):
        g = with_random_labels(erdos_renyi(40, 0.25, seed=seed), 2, seed=seed)
        patterns = [generate_clique(3), generate_chain(3)]
        map_fn = lambda m: (m.pattern.signature(), 1)  # noqa: E731
        session = MiningSession(g)
        sequential = session.aggregate(patterns, map_fn)
        threaded = session.aggregate(patterns, map_fn, num_threads=4)
        assert threaded == sequential
        for p in patterns:
            assert threaded[p.signature()] == count(g, p)

    def test_threaded_order_insensitive_reduce(self):
        g = erdos_renyi(36, 0.3, seed=23)
        session = MiningSession(g)
        map_fn = lambda m: ("min-vertex", min(m.vertices()))  # noqa: E731
        sequential = session.aggregate(generate_clique(3), map_fn, reduce=max)
        threaded = session.aggregate(
            generate_clique(3), map_fn, reduce=max, num_threads=3
        )
        assert threaded == sequential

    def test_threaded_aggregate_rejects_unsupported_options(self):
        """Knobs the thread pool cannot honor fail loudly, not silently."""
        g = erdos_renyi(24, 0.3, seed=31)
        session = MiningSession(g)
        map_fn = lambda m: ("k", 1)  # noqa: E731
        with pytest.raises(MatchingError, match="start_vertices"):
            session.aggregate(
                generate_clique(3), map_fn, num_threads=2, start_vertices=[5]
            )
        with pytest.raises(MatchingError, match="stats"):
            session.aggregate(
                generate_clique(3), map_fn, num_threads=2, stats=EngineStats()
            )
        with pytest.raises(MatchingError, match="not available under threads"):
            session.aggregate(
                generate_clique(3), map_fn, num_threads=2, engine="accel"
            )

    def test_threaded_on_update_sees_cumulative_totals(self):
        """on_update observes one map accumulating across patterns."""
        g = erdos_renyi(36, 0.3, seed=37)
        session = MiningSession(g)
        patterns = [generate_clique(3), generate_chain(3)]
        observed: list[int] = []
        session.aggregate(
            patterns,
            lambda m: ("all", 1),
            num_threads=2,
            on_update=lambda agg: observed.append(agg.get("all") or 0),
        )
        total = sum(count(g, p) for p in patterns)
        # The final sweeps see the cross-pattern total, and the observed
        # series never decreases (nothing is reset between patterns).
        assert observed and max(observed) == total
        assert observed == sorted(observed)

    def test_sequential_multi_pattern_aggregate_fuses(self):
        """The fused aggregate path returns the same map as per-pattern."""
        g = erdos_renyi(30, 0.28, seed=29)
        patterns = [generate_clique(3), generate_chain(3), generate_star(3)]
        session = MiningSession(g)
        agg = session.aggregate(patterns, lambda m: (m.pattern.signature(), 1))
        for p in patterns:
            assert agg[p.signature()] == count(g, p)