"""Tests for minimum connected vertex cover (the pattern core)."""

import pytest

from repro.core import is_connected_cover, minimum_connected_vertex_cover
from repro.errors import PlanError
from repro.pattern import (
    Pattern,
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
    pattern_p7,
    pattern_p8,
)


class TestKnownCovers:
    def test_single_edge(self):
        assert minimum_connected_vertex_cover(Pattern.from_edges([(0, 1)])) == [0]

    def test_star_center(self):
        assert minimum_connected_vertex_cover(generate_star(5)) == [0]

    def test_triangle_needs_two(self):
        cover = minimum_connected_vertex_cover(generate_clique(3))
        assert len(cover) == 2

    def test_clique_k_minus_one(self):
        cover = minimum_connected_vertex_cover(generate_clique(5))
        assert len(cover) == 4

    def test_chain4(self):
        cover = minimum_connected_vertex_cover(generate_chain(4))
        assert cover == [1, 2]

    def test_cycle4_connected_constraint(self):
        # {0, 2} covers C4 but is disconnected; connected cover needs 3.
        cover = minimum_connected_vertex_cover(generate_cycle(4))
        assert len(cover) == 3

    def test_single_vertex_pattern(self):
        assert minimum_connected_vertex_cover(Pattern(num_vertices=1)) == [0]


class TestAntiEdgeCoverage:
    def test_regular_anti_edge_must_be_covered(self):
        # Wedge with anti-edge between the two leaves (vertex-induced wedge):
        # cover {center} covers both edges but not the anti-edge.
        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        cover = minimum_connected_vertex_cover(p)
        assert 0 in cover or 2 in cover
        assert len(cover) == 2

    def test_anti_vertex_edges_not_covered(self):
        # p7's anti-vertex constraints are deferred; core is the triangle's.
        cover = minimum_connected_vertex_cover(pattern_p7())
        assert 3 not in cover
        assert len(cover) == 2

    def test_p8_cover(self):
        cover = minimum_connected_vertex_cover(pattern_p8())
        p = pattern_p8()
        assert is_connected_cover(p, set(cover))


class TestValidation:
    def test_disconnected_pattern_rejected(self):
        p = Pattern(num_vertices=4, edges=[(0, 1), (2, 3)])
        with pytest.raises(PlanError):
            minimum_connected_vertex_cover(p)

    def test_empty_pattern_rejected(self):
        with pytest.raises(PlanError):
            minimum_connected_vertex_cover(Pattern())

    def test_is_connected_cover_checks_edges(self):
        p = generate_clique(3)
        assert not is_connected_cover(p, {0})
        assert is_connected_cover(p, {0, 1})

    def test_is_connected_cover_checks_connectivity(self):
        p = generate_cycle(4)
        assert not is_connected_cover(p, {0, 2})
        assert is_connected_cover(p, {0, 1, 2})


class TestNonCoreIndependence:
    """The property complete_match relies on: non-core vertices have all
    their regular neighbors inside the cover."""

    @pytest.mark.parametrize(
        "pattern",
        [
            generate_clique(4),
            generate_star(5),
            generate_chain(5),
            generate_cycle(5),
            pattern_p8(),
        ],
    )
    def test_noncore_is_independent_set(self, pattern):
        cover = set(minimum_connected_vertex_cover(pattern))
        noncore = [
            u for u in pattern.regular_vertices() if u not in cover
        ]
        for u in noncore:
            for v in pattern.neighbors(u):
                assert v in cover
