"""Tests for the roaring-like compressed bitmaps (repro.bitmap)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.bitmap import (
    ARRAY_MAX,
    ArrayContainer,
    BitmapContainer,
    RoaringBitmap,
    RunContainer,
    container_from_values,
)
from repro.bitmap.containers import CHUNK_SIZE
from repro.mining.support import Bitset, Domain


# ----------------------------------------------------------------------
# Containers
# ----------------------------------------------------------------------


class TestArrayContainer:
    def test_add_and_contains(self):
        c = ArrayContainer()
        c.add(5)
        c.add(3)
        c.add(5)  # duplicate
        assert 5 in c and 3 in c and 4 not in c
        assert len(c) == 2

    def test_values_sorted(self):
        c = ArrayContainer([9, 1, 4])
        assert list(c.values()) == [1, 4, 9]

    def test_memory_two_bytes_per_member(self):
        c = ArrayContainer(range(10))
        assert c.memory_bytes() == 20

    def test_union_with_array(self):
        a = ArrayContainer([1, 2])
        b = ArrayContainer([2, 3])
        assert sorted(a.union(b).values()) == [1, 2, 3]

    def test_intersect_smaller_side(self):
        a = ArrayContainer(range(100))
        b = ArrayContainer([5, 500])
        got = a.intersect(b)
        assert list(got.values()) == [5]


class TestBitmapContainer:
    def test_roundtrip(self):
        c = BitmapContainer([0, 63, 64, 65535])
        assert list(c.values()) == [0, 63, 64, 65535]
        assert len(c) == 4

    def test_add_idempotent_count(self):
        c = BitmapContainer()
        c.add(7)
        c.add(7)
        assert len(c) == 1

    def test_fixed_memory(self):
        assert BitmapContainer().memory_bytes() == CHUNK_SIZE // 8
        assert BitmapContainer(range(5000)).memory_bytes() == CHUNK_SIZE // 8

    def test_union_bitmap_bitmap(self):
        a = BitmapContainer([1, 2])
        b = BitmapContainer([2, 3])
        assert sorted(a.union(b).values()) == [1, 2, 3]

    def test_intersect_downgrades_to_array(self):
        a = BitmapContainer(range(0, 10000, 2))
        b = BitmapContainer(range(0, 10000, 3))
        got = a.intersect(b)
        assert got.kind == "array"
        assert list(got.values()) == list(range(0, 10000, 6))


class TestRunContainer:
    def test_runs_coalesce(self):
        c = RunContainer([1, 2, 3, 7, 8])
        assert c.runs() == [(1, 3), (7, 2)]
        assert len(c) == 5

    def test_add_bridges_runs(self):
        c = RunContainer([1, 2, 4, 5])
        c.add(3)
        assert c.runs() == [(1, 5)]

    def test_contains_interior(self):
        c = RunContainer([10, 11, 12])
        assert 11 in c and 13 not in c and 9 not in c

    def test_memory_four_bytes_per_run(self):
        c = RunContainer(list(range(100)) + [500])
        assert c.memory_bytes() == 8  # two runs


class TestContainerSelection:
    def test_sparse_picks_array(self):
        c = container_from_values([1, 100, 10000])
        assert c.kind == "array"

    def test_dense_scattered_picks_bitmap(self):
        # > ARRAY_MAX members, no long runs.
        c = container_from_values(range(0, 2 * (ARRAY_MAX + 100), 2))
        assert c.kind == "bitmap"

    def test_contiguous_picks_run(self):
        c = container_from_values(range(5000))
        assert c.kind == "run"
        assert c.memory_bytes() == 4

    def test_selection_preserves_members(self):
        vals = set(range(0, 300, 7)) | set(range(1000, 1100))
        c = container_from_values(vals)
        assert set(c.values()) == vals


# ----------------------------------------------------------------------
# RoaringBitmap
# ----------------------------------------------------------------------


class TestRoaringBitmap:
    def test_empty(self):
        r = RoaringBitmap()
        assert len(r) == 0
        assert not r
        assert 0 not in r
        assert r.memory_bytes() >= 1

    def test_add_across_chunks(self):
        r = RoaringBitmap([1, 65535, 65536, 1 << 20])
        assert sorted(r) == [1, 65535, 65536, 1 << 20]
        assert len(r._chunks) == 3

    def test_negative_add_rejected(self):
        with pytest.raises(ValueError):
            RoaringBitmap().add(-1)

    def test_negative_contains_false(self):
        assert -5 not in RoaringBitmap([1])

    def test_or_and_ior_agree(self):
        a = RoaringBitmap([1, 2, 70000])
        b = RoaringBitmap([2, 3, 140000])
        union = a | b
        a |= b
        assert sorted(union) == sorted(a) == [1, 2, 3, 70000, 140000]

    def test_and(self):
        a = RoaringBitmap([1, 2, 70000, 70001])
        b = RoaringBitmap([2, 70001, 900000])
        assert sorted(a & b) == [2, 70001]

    def test_equality_structure_independent(self):
        # Same members through different construction orders / container
        # evolutions must compare equal.
        a = RoaringBitmap(range(6000))        # becomes run/bitmap
        b = RoaringBitmap()
        for v in reversed(range(6000)):
            b.add(v)
        assert a == b

    def test_array_upgrades_to_dense(self):
        r = RoaringBitmap()
        for v in range(0, 2 * ARRAY_MAX + 2, 2):  # > ARRAY_MAX scattered
            r.add(v)
        kinds = r.container_kinds()
        assert kinds.get("array", 0) == 0

    def test_optimize_finds_runs(self):
        r = RoaringBitmap()
        for v in range(3000):  # stays an array (below upgrade threshold)
            r.add(v)
        assert r.container_kinds() == {"array": 1}
        before = r.memory_bytes()
        r.optimize()
        assert r.memory_bytes() < before
        assert r.container_kinds() == {"run": 1}
        assert len(r) == 3000

    def test_compression_beats_dense_bitset_on_sparse_ids(self):
        ids = [10_000_000 + i for i in range(50)]
        roaring = RoaringBitmap(ids)
        dense = Bitset(ids)
        assert roaring.memory_bytes() < dense.memory_bytes() / 100

    def test_interface_matches_bitset(self):
        """Every operation Domain uses must exist on both backends."""
        for backend in (Bitset, RoaringBitmap):
            x = backend()
            x.add(3)
            y = backend([3, 5])
            x |= y
            assert len(x) == 2
            assert 5 in x
            assert x.memory_bytes() > 0
            assert (x & y) is not None
            assert x.to_list() == [3, 5]


# ----------------------------------------------------------------------
# Property tests: roaring == set semantics
# ----------------------------------------------------------------------

values_strategy = st.lists(
    st.integers(min_value=0, max_value=1 << 21), max_size=300
)


class TestRoaringProperties:
    @given(values_strategy)
    def test_membership_matches_set(self, vals):
        r = RoaringBitmap(vals)
        s = set(vals)
        assert len(r) == len(s)
        assert sorted(r) == sorted(s)
        for probe in list(s)[:20]:
            assert probe in r

    @given(values_strategy, values_strategy)
    def test_union_matches_set(self, a_vals, b_vals):
        a, b = RoaringBitmap(a_vals), RoaringBitmap(b_vals)
        assert sorted(a | b) == sorted(set(a_vals) | set(b_vals))

    @given(values_strategy, values_strategy)
    def test_intersection_matches_set(self, a_vals, b_vals):
        a, b = RoaringBitmap(a_vals), RoaringBitmap(b_vals)
        assert sorted(a & b) == sorted(set(a_vals) & set(b_vals))

    @given(values_strategy)
    @settings(max_examples=30)
    def test_optimize_is_semantics_preserving(self, vals):
        r = RoaringBitmap(vals)
        before = sorted(r)
        r.optimize()
        assert sorted(r) == before

    @given(values_strategy, values_strategy)
    @settings(max_examples=30)
    def test_ior_equals_or(self, a_vals, b_vals):
        a1, a2 = RoaringBitmap(a_vals), RoaringBitmap(a_vals)
        b = RoaringBitmap(b_vals)
        a1 |= b
        assert sorted(a1) == sorted(a2 | b)


# ----------------------------------------------------------------------
# Domain integration
# ----------------------------------------------------------------------


class TestDomainWithRoaring:
    def test_support_agrees_with_dense_backend(self):
        dense = Domain(3)
        compressed = Domain(3, bitset_factory=RoaringBitmap)
        for mapping in ([0, 1, 2], [0, 2, 3], [1, 2, 4]):
            dense.update(mapping)
            compressed.update(mapping)
        assert dense.support() == compressed.support() == 2

    def test_merge_from_mixed_rounds(self):
        a = Domain(2, bitset_factory=RoaringBitmap)
        b = Domain(2, bitset_factory=RoaringBitmap)
        a.update([1, 2])
        b.update([3, 4])
        a.merge_from(b)
        assert a.support() == 2
        assert a.writes == 4

    def test_orbit_folding_with_roaring(self):
        # Symmetric 2-vertex pattern: both vertices share one orbit.
        d = Domain(2, orbits=[[0, 1]], bitset_factory=RoaringBitmap)
        d.update([0, 1])  # canonical match only
        # Full domain of each vertex is {0,1} after orbit folding.
        assert d.support() == 2
        assert sorted(d.vertex_domain(0)) == [0, 1]
