"""Tests for motif counting."""

import networkx as nx

from repro.mining import labeled_motif_counts, motif_census_table, motif_counts
from repro.graph import erdos_renyi, with_random_labels
from repro.pattern import generate_clique, are_isomorphic
from repro.testing.oracles import nx_count_vertex_induced


class TestMotifCounts:
    def test_three_motifs_vs_oracle(self, random_graph):
        counts = motif_counts(random_graph, 3)
        assert len(counts) == 2
        for p, n in counts.items():
            assert n == nx_count_vertex_induced(random_graph, p)

    def test_triangle_entry_matches_nx(self, random_graph):
        counts = motif_counts(random_graph, 3)
        tri = next(p for p in counts if p.num_edges == 3)
        G = random_graph.to_networkx()
        assert counts[tri] == sum(nx.triangles(G).values()) // 3

    def test_four_motifs_vs_oracle(self):
        g = erdos_renyi(20, 0.3, seed=9)
        counts = motif_counts(g, 4)
        assert len(counts) == 6
        for p, n in counts.items():
            assert n == nx_count_vertex_induced(g, p)

    def test_sum_equals_connected_subgraph_count(self, random_graph):
        # Total vertex-induced motif matches = number of connected
        # 3-vertex induced subgraphs.
        counts = motif_counts(random_graph, 3)
        G = random_graph.to_networkx()
        from itertools import combinations

        total = 0
        for trio in combinations(G.nodes, 3):
            sub = G.subgraph(trio)
            if nx.is_connected(sub):
                total += 1
        assert sum(counts.values()) == total

    def test_prgu_equals_aware(self, random_graph):
        aware = motif_counts(random_graph, 3)
        unaware = motif_counts(random_graph, 3, symmetry_breaking=False)
        for p in aware:
            assert aware[p] == unaware[p]


class TestLabeledMotifs:
    def test_totals_match_structural(self):
        g = with_random_labels(erdos_renyi(25, 0.25, seed=3), 3, seed=1)
        labeled = labeled_motif_counts(g, 3)
        structural = motif_counts(g, 3)
        from repro.pattern import canonical_code

        by_code = {}
        for (code, labels), n in labeled.items():
            by_code[code] = by_code.get(code, 0) + n
        for p, n in structural.items():
            assert by_code.get(canonical_code(p), 0) == n

    def test_label_tuples_have_pattern_size(self):
        g = with_random_labels(erdos_renyi(15, 0.3, seed=4), 2, seed=2)
        for (code, labels) in labeled_motif_counts(g, 3):
            assert len(labels) == 3


class TestCensusTable:
    def test_table_mentions_graph_name(self, random_graph):
        table = motif_census_table(random_graph, 3)
        assert random_graph.name in table
        assert "edges" in table
