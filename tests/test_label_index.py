"""Tests for label-indexed task seeding (the G-Miner-style pruning)."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import EngineStats, count, match
from repro.core.session import _label_filtered_starts
from repro.core.plan import generate_plan
from repro.graph import erdos_renyi, with_random_labels
from repro.pattern import Pattern, generate_chain, generate_clique


@pytest.fixture(scope="module")
def labeled():
    return with_random_labels(erdos_renyi(120, 0.12, seed=3), 5, seed=4)


def fully_labeled_chain(labels: tuple[int, ...]) -> Pattern:
    p = generate_chain(len(labels))
    for u, lab in enumerate(labels):
        p.set_label(u, lab)
    return p


class TestLabelFilteredStarts:
    def test_unlabeled_graph_no_restriction(self):
        g = erdos_renyi(30, 0.2, seed=1)
        ordered, _ = g.degree_ordered()
        plan = generate_plan(generate_clique(3))
        assert _label_filtered_starts(ordered, plan) is None

    def test_wildcard_top_no_restriction(self, labeled):
        ordered, _ = labeled.degree_ordered()
        plan = generate_plan(generate_chain(3))  # unlabeled pattern
        assert _label_filtered_starts(ordered, plan) is None

    def test_labeled_pattern_restricts_and_orders_hub_first(self, labeled):
        ordered, _ = labeled.degree_ordered()
        plan = generate_plan(fully_labeled_chain((0, 1, 2)))
        starts = _label_filtered_starts(ordered, plan)
        assert starts is not None
        assert starts == sorted(starts, reverse=True)
        assert len(starts) < ordered.num_vertices


class TestCountsUnchanged:
    @pytest.mark.parametrize(
        "labels", [(0, 1, 2), (1, 1, 1), (4, 0, 4), (2, 3)]
    )
    def test_fully_labeled(self, labeled, labels):
        p = fully_labeled_chain(labels)
        assert match(labeled, p) == match(labeled, p, label_index=False)

    def test_partially_labeled(self, labeled):
        p = generate_chain(3)
        p.set_label(1, 1)
        assert match(labeled, p) == match(labeled, p, label_index=False)

    def test_labeled_clique(self, labeled):
        p = generate_clique(3)
        for u in range(3):
            p.set_label(u, 0)
        assert match(labeled, p) == match(labeled, p, label_index=False)

    def test_callback_sees_same_matches(self, labeled):
        p = fully_labeled_chain((0, 1, 0))
        with_index: set = set()
        without: set = set()
        match(labeled, p, callback=lambda m: with_index.add(m.mapping))
        match(
            labeled,
            p,
            callback=lambda m: without.add(m.mapping),
            label_index=False,
        )
        assert with_index == without

    @given(st.integers(min_value=0, max_value=1000))
    @settings(max_examples=15, deadline=None)
    def test_random_labelings(self, seed):
        import random

        rng = random.Random(seed)
        g = with_random_labels(erdos_renyi(40, 0.2, seed=seed), 3, seed=seed)
        p = fully_labeled_chain(tuple(rng.randrange(3) for _ in range(3)))
        assert match(g, p) == match(g, p, label_index=False)


class TestPruning:
    def test_fewer_tasks_with_index(self, labeled):
        p = fully_labeled_chain((0, 1, 2))
        s_on, s_off = EngineStats(), EngineStats()
        match(labeled, p, stats=s_on)
        match(labeled, p, stats=s_off, label_index=False)
        assert s_on.tasks < s_off.tasks

    def test_absent_label_means_zero_tasks(self, labeled):
        p = fully_labeled_chain((99, 99, 99))  # label not in the graph
        stats = EngineStats()
        assert match(labeled, p, stats=stats) == 0
        assert stats.tasks == 0
