"""Tests for synthetic graph generators and dataset stand-ins."""

import pytest

from repro.errors import GraphError
from repro.graph import (
    barabasi_albert,
    chain_graph,
    complete_graph,
    cycle_graph,
    erdos_renyi,
    friendster_like,
    grid_graph,
    mico_like,
    orkut_like,
    patents_like,
    power_law,
    random_regular,
    star_graph,
    with_random_labels,
)


class TestPowerLaw:
    def test_deterministic(self):
        a = power_law(200, gamma=2.2, seed=4)
        b = power_law(200, gamma=2.2, seed=4)
        assert [a.neighbors(v) for v in a.vertices()] == [
            b.neighbors(v) for v in b.vertices()
        ]

    def test_simple_graph_invariants(self):
        g = power_law(300, gamma=2.0, seed=1)
        for v in g.vertices():
            nbrs = g.neighbors(v)
            assert v not in nbrs  # no self-loops
            assert len(nbrs) == len(set(nbrs))  # no multi-edges

    def test_gamma_controls_skew(self):
        heavy = power_law(2000, gamma=2.0, seed=3)
        tame = power_law(2000, gamma=3.5, seed=3)
        assert heavy.max_degree() > 4 * tame.max_degree()

    def test_degree_bounds_respected(self):
        g = power_law(500, gamma=2.0, d_min=3, d_max=40, seed=2)
        # Stub-conflict dropping may undershoot d_min, but the cap (+1
        # for the possible parity fix-up) is hard.
        assert g.max_degree() <= 41

    def test_invalid_parameters(self):
        with pytest.raises(GraphError):
            power_law(1)
        with pytest.raises(GraphError):
            power_law(100, gamma=1.0)
        with pytest.raises(GraphError):
            power_law(100, d_min=0)
        with pytest.raises(GraphError):
            power_law(100, d_min=10, d_max=5)


class TestBasicGenerators:
    def test_complete(self):
        g = complete_graph(5)
        assert g.num_edges == 10
        assert g.max_degree() == 4

    def test_star(self):
        g = star_graph(6)
        assert g.num_edges == 5
        assert g.degree(0) == 5

    def test_chain(self):
        g = chain_graph(5)
        assert g.num_edges == 4
        assert g.degree(0) == 1
        assert g.degree(2) == 2

    def test_cycle(self):
        g = cycle_graph(5)
        assert g.num_edges == 5
        assert all(g.degree(v) == 2 for v in g.vertices())

    def test_cycle_too_small(self):
        with pytest.raises(GraphError):
            cycle_graph(2)

    def test_grid(self):
        g = grid_graph(3, 4)
        assert g.num_vertices == 12
        assert g.num_edges == 3 * 3 + 2 * 4  # horizontal + vertical


class TestRandomGenerators:
    def test_erdos_renyi_deterministic(self):
        assert erdos_renyi(30, 0.2, seed=5) == erdos_renyi(30, 0.2, seed=5)

    def test_erdos_renyi_seeds_differ(self):
        assert erdos_renyi(30, 0.2, seed=5) != erdos_renyi(30, 0.2, seed=6)

    def test_erdos_renyi_probability_bounds(self):
        with pytest.raises(GraphError):
            erdos_renyi(10, 1.5)
        assert erdos_renyi(10, 0.0).num_edges == 0
        assert erdos_renyi(10, 1.0).num_edges == 45

    def test_barabasi_albert_edge_count(self):
        n, m = 100, 3
        g = barabasi_albert(n, m, seed=1)
        # seed clique C(m+1,2) + m per subsequent vertex
        assert g.num_edges == (m + 1) * m // 2 + m * (n - m - 1)

    def test_barabasi_albert_bad_params(self):
        with pytest.raises(GraphError):
            barabasi_albert(3, 3)

    def test_barabasi_albert_heavy_tail(self):
        g = barabasi_albert(300, 2, seed=2)
        assert g.max_degree() > 4 * g.avg_degree()

    def test_random_regular(self):
        g = random_regular(20, 4, seed=3)
        assert all(g.degree(v) <= 4 for v in g.vertices())
        assert sum(g.degree(v) for v in g.vertices()) >= 0.9 * 20 * 4

    def test_random_regular_odd_total_rejected(self):
        with pytest.raises(GraphError):
            random_regular(5, 3)


class TestLabeling:
    def test_with_random_labels_range(self):
        g = with_random_labels(erdos_renyi(50, 0.1, seed=1), 6, seed=2)
        assert g.is_labeled
        assert all(0 <= g.label(v) < 6 for v in g.vertices())

    def test_with_random_labels_needs_positive(self):
        with pytest.raises(GraphError):
            with_random_labels(erdos_renyi(5, 0.5), 0)

    def test_labeling_preserves_structure(self):
        base = erdos_renyi(30, 0.2, seed=4)
        labeled = with_random_labels(base, 3, seed=0)
        assert set(labeled.edges()) == set(base.edges())


class TestDatasetStandIns:
    def test_mico_like_labels(self):
        g = mico_like(0.2)
        assert g.is_labeled
        assert g.num_labels() <= 29

    def test_patents_like_unlabeled_by_default(self):
        assert not patents_like(0.2).is_labeled

    def test_patents_like_labeled_variant(self):
        g = patents_like(0.2, labeled=True)
        assert g.is_labeled
        assert g.num_labels() <= 37

    def test_relative_density(self):
        # Orkut-like must be denser than friendster-like (per Table 2).
        assert orkut_like(0.2).avg_degree() > friendster_like(0.2).avg_degree()

    def test_scale_parameter(self):
        small = mico_like(0.1)
        large = mico_like(0.5)
        assert large.num_vertices > small.num_vertices

    def test_determinism(self):
        assert orkut_like(0.1) == orkut_like(0.1)
