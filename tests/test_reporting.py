"""Tests for the reporting helpers (tables, charts, formatters)."""

from __future__ import annotations

import pytest
from hypothesis import given
from hypothesis import strategies as st

from repro.reporting import (
    Table,
    bar_chart,
    format_bytes,
    format_count,
    format_seconds,
    speedup_cell,
    stacked_bar,
)


class TestFormatters:
    @pytest.mark.parametrize(
        "seconds,expected",
        [
            (None, "—"),
            (0.0000005, "0us"),
            (0.0005, "500us"),
            (0.25, "250.0ms"),
            (1.0, "1.00s"),
            (402.57, "402.57s"),
        ],
    )
    def test_format_seconds(self, seconds, expected):
        assert format_seconds(seconds) == expected

    def test_format_seconds_rejects_negative(self):
        with pytest.raises(ValueError):
            format_seconds(-1.0)

    @pytest.mark.parametrize(
        "nbytes,expected",
        [
            (None, "—"),
            (0, "0B"),
            (1023, "1023B"),
            (1024, "1.0KiB"),
            (32 * 1024**3, "32.0GiB"),
        ],
    )
    def test_format_bytes(self, nbytes, expected):
        assert format_bytes(nbytes) == expected

    def test_format_count(self):
        assert format_count(3_500_000) == "3,500,000"
        assert format_count(None) == "—"

    def test_speedup_cell_variants(self):
        assert speedup_cell(158.05, 0.12) == "158.05s (1317.1x)"
        assert speedup_cell(None, 1.0) == "—"
        assert speedup_cell(1.0, 1.0, status="timeout") == "×"
        assert speedup_cell(1.0, 1.0, status="oom") == "—"
        assert "inf" in speedup_cell(1.0, 0.0)


class TestTable:
    def test_render_alignment(self):
        t = Table(["system", "time"], aligns="<>")
        t.add_row("peregrine", "0.12s")
        t.add_row("arabesque-like", "158.05s")
        out = t.render()
        lines = out.splitlines()
        assert lines[0].startswith("system")
        assert set(lines[1]) == {"-"}
        assert lines[2].startswith("peregrine")
        assert lines[3].endswith("158.05s")

    def test_right_alignment_pads_left(self):
        t = Table(["n"], aligns=">")
        t.add_row("5")
        t.add_row("5000")
        lines = t.render().splitlines()
        assert lines[2] == "   5"

    def test_wrong_cell_count_rejected(self):
        t = Table(["a", "b"])
        with pytest.raises(ValueError):
            t.add_row("only-one")

    def test_bad_aligns_rejected(self):
        with pytest.raises(ValueError):
            Table(["a"], aligns="^")
        with pytest.raises(ValueError):
            Table(["a", "b"], aligns="<")

    def test_add_rows_bulk(self):
        t = Table(["x", "y"])
        t.add_rows([(1, 2), (3, 4)])
        assert t.num_rows == 2

    def test_empty_table_renders_header(self):
        t = Table(["alpha"])
        out = t.render()
        assert "alpha" in out

    @given(
        st.lists(
            st.tuples(
                st.text(
                    alphabet=st.characters(min_codepoint=32, max_codepoint=126),
                    min_size=1,
                    max_size=8,
                ),
                st.integers(),
            ),
            min_size=1,
            max_size=10,
        )
    )
    def test_render_row_count_property(self, rows):
        t = Table(["name", "value"])
        for name, value in rows:
            t.add_row(name, value)
        assert len(t.render().splitlines()) == 2 + len(rows)


class TestBarChart:
    def test_scales_to_peak(self):
        out = bar_chart({"a": 4.0, "b": 1.0}, width=8)
        lines = out.splitlines()
        assert lines[0].count("#") == 8
        assert lines[1].count("#") == 2

    def test_zero_value_gets_no_bar(self):
        out = bar_chart({"a": 1.0, "b": 0.0}, width=4)
        assert out.splitlines()[1].count("#") == 0

    def test_tiny_nonzero_gets_one_cell(self):
        out = bar_chart({"a": 1000.0, "b": 0.001}, width=10)
        assert out.splitlines()[1].count("#") == 1

    def test_empty_and_invalid(self):
        assert bar_chart({}) == "(no data)"
        with pytest.raises(ValueError):
            bar_chart({"a": -1.0})
        with pytest.raises(ValueError):
            bar_chart({"a": 1.0}, width=0)

    def test_custom_value_format(self):
        out = bar_chart({"a": 0.5}, value_format=lambda v: f"{v:.0%}")
        assert out.endswith("50%")


class TestStackedBar:
    def test_width_exact(self):
        out = stacked_bar({"po": 1, "core": 1, "noncore": 6}, width=40)
        bar_line = out.splitlines()[0]
        assert len(bar_line) == 42  # brackets + width cells

    def test_legend_has_percentages(self):
        out = stacked_bar({"x": 3, "y": 1}, width=20)
        assert "75.0%" in out and "25.0%" in out

    def test_zero_total(self):
        assert stacked_bar({"a": 0.0}) == "(no data)"

    def test_rejects_negative_and_narrow(self):
        with pytest.raises(ValueError):
            stacked_bar({"a": -1.0})
        with pytest.raises(ValueError):
            stacked_bar({"a": 1, "b": 1, "c": 1}, width=2)

    @given(
        st.dictionaries(
            st.text(min_size=1, max_size=5),
            st.floats(min_value=0.01, max_value=100),
            min_size=1,
            max_size=6,
        )
    )
    def test_bar_always_fills_width(self, shares):
        out = stacked_bar(shares, width=50)
        assert len(out.splitlines()[0]) == 52
