"""Tests for counters, memory accounting and stage timers."""

import time

from repro.profiling import (
    ExplorationCounters,
    StageTimer,
    StoreMeter,
    embedding_bytes,
    format_fig1_row,
)


class TestExplorationCounters:
    def test_explored_ratio(self):
        c = ExplorationCounters(matches_explored=100, result_size=4)
        assert c.explored_ratio() == 25.0

    def test_ratio_zero_results(self):
        assert ExplorationCounters(matches_explored=5).explored_ratio() == float("inf")
        assert ExplorationCounters().explored_ratio() == 0.0

    def test_merge(self):
        a = ExplorationCounters(matches_explored=1, canonicality_checks=2,
                                peak_store_bytes=10)
        b = ExplorationCounters(matches_explored=3, canonicality_checks=4,
                                peak_store_bytes=50)
        a.merge(b)
        assert a.matches_explored == 4
        assert a.canonicality_checks == 6
        assert a.peak_store_bytes == 50

    def test_format_row(self):
        c = ExplorationCounters(system="x", matches_explored=10, result_size=5)
        row = format_fig1_row(c)
        assert "x" in row
        assert "(2x)" in row


class TestStoreMeter:
    def test_peak_tracking(self):
        m = StoreMeter()
        m.add(100)
        m.add(50)
        m.remove(120)
        m.add(10)
        assert m.peak_bytes == 150
        assert m.live_bytes == 40

    def test_never_negative(self):
        m = StoreMeter()
        m.remove(10)
        assert m.live_bytes == 0

    def test_embedding_helpers(self):
        m = StoreMeter()
        m.add_embedding(4)
        assert m.live_bytes == embedding_bytes(4) == 32
        m.remove_embedding(4)
        assert m.live_bytes == 0

    def test_budget(self):
        m = StoreMeter(budget_bytes=100)
        m.add(99)
        assert not m.over_budget()
        m.add(2)
        assert m.over_budget()

    def test_no_budget_never_over(self):
        m = StoreMeter()
        m.add(10**12)
        assert not m.over_budget()


class TestStageTimer:
    def test_breakdown_sums_to_total(self):
        t = StageTimer()
        t.start("other")
        t.start("core")
        time.sleep(0.005)
        t.stop("core")
        t.start("po")
        time.sleep(0.002)
        t.stop("po")
        t.stop("other")
        parts = t.breakdown()
        assert parts["core"] >= 0.004
        assert parts["po"] >= 0.001
        assert abs(sum(parts.values()) - t.total) < 1e-6

    def test_shares_sum_to_one(self):
        t = StageTimer()
        t.start("other")
        t.start("noncore")
        time.sleep(0.002)
        t.stop("noncore")
        t.stop("other")
        shares = t.shares()
        assert abs(sum(shares.values()) - 1.0) < 1e-9

    def test_empty_timer_shares_zero(self):
        assert sum(StageTimer().shares().values()) == 0.0

    def test_unbalanced_stop_ignored(self):
        t = StageTimer()
        t.stop("core")  # never started: no crash
        assert t.breakdown()["core"] == 0.0

    def test_reset(self):
        t = StageTimer()
        t.start("other")
        t.stop("other")
        t.reset()
        assert t.total == 0.0


class TestEngineTimerIntegration:
    def test_engine_populates_stages(self):
        from repro.core import count
        from repro.graph import erdos_renyi
        from repro.pattern import pattern_p1

        g = erdos_renyi(40, 0.2, seed=1)
        timer = StageTimer()
        count(g, pattern_p1(), timer=timer)
        parts = timer.breakdown()
        assert parts["core"] > 0
        assert parts["noncore"] > 0
        assert timer.total > 0
