"""Tests for clique workloads."""

import networkx as nx

from repro.graph import complete_graph, erdos_renyi, from_edges
from repro.mining import (
    clique_count,
    clique_exists,
    list_cliques,
    maximal_clique_count,
    maximal_clique_pattern,
)


def nx_k_cliques(graph, k: int) -> int:
    G = graph.to_networkx()
    from itertools import combinations

    total = 0
    for nodes in combinations(G.nodes, k):
        if all(G.has_edge(u, v) for u, v in combinations(nodes, 2)):
            total += 1
    return total


class TestCliqueCount:
    def test_vs_oracle(self, denser_graph):
        for k in (3, 4, 5):
            assert clique_count(denser_graph, k) == nx_k_cliques(denser_graph, k)

    def test_complete_graph_binomial(self):
        import math

        g = complete_graph(7)
        for k in (3, 4, 5):
            assert clique_count(g, k) == math.comb(7, k)

    def test_prgu_corrected(self, denser_graph):
        assert clique_count(denser_graph, 3, symmetry_breaking=False) == (
            clique_count(denser_graph, 3)
        )

    def test_triangle_free_graph(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])  # C4
        assert clique_count(g, 3) == 0


class TestCliqueExistence:
    def test_exists(self, denser_graph):
        assert clique_exists(denser_graph, 3) == (
            clique_count(denser_graph, 3) > 0
        )

    def test_not_exists_large(self):
        g = erdos_renyi(20, 0.15, seed=1)
        assert not clique_exists(g, 8)


class TestListCliques:
    def test_all_distinct_and_valid(self, denser_graph):
        cliques = list_cliques(denser_graph, 3)
        assert len(cliques) == clique_count(denser_graph, 3)
        assert len(set(cliques)) == len(cliques)
        for a, b, c in cliques:
            assert denser_graph.has_edge(a, b)
            assert denser_graph.has_edge(b, c)
            assert denser_graph.has_edge(a, c)

    def test_limit_stops_early(self, denser_graph):
        capped = list_cliques(denser_graph, 3, limit=2)
        assert len(capped) <= 3  # the stopping match batch may add a couple


class TestMaximalCliques:
    def test_pattern_shape(self):
        p = maximal_clique_pattern(4)
        assert p.num_vertices == 5
        assert p.anti_vertices() == [4]
        assert len(p.anti_neighbors(4)) == 4

    def test_vs_networkx_maximal(self, denser_graph):
        # Count triangles that are maximal cliques via networkx.
        G = denser_graph.to_networkx()
        expected = sum(
            1 for clique in nx.find_cliques(G) if len(clique) == 3
        )
        assert maximal_clique_count(denser_graph, 3) == expected

    def test_k6_has_no_maximal_triangles(self):
        assert maximal_clique_count(complete_graph(6), 3) == 0
