"""Tests for the async mining service tier (repro.service).

Covers the session registry's two eviction axes (and that eviction
really releases ``.rgx`` mmap handles), the batching queue's fused
execution against sequential single-request ground truth, failure
isolation inside coalesced batches, the verb dispatch surface's
response shapes, and the metrics snapshot the acceptance gauge reads.
"""

from __future__ import annotations

import asyncio

import pytest

from repro.core.session import MiningSession
from repro.graph import barabasi_albert, erdos_renyi, with_random_labels
from repro.graph.binary_io import save_mmap
from repro.pattern import generate_chain, generate_clique, generate_star
from repro.runtime import guards
from repro.runtime.pool import QueryPool
from repro.service import (
    BatchingQueue,
    MiningService,
    QueryJob,
    ServiceConfig,
    ServiceMetrics,
    SessionRegistry,
)
from repro.service.metrics import LatencyHistogram


def run(coro):
    return asyncio.run(coro)


@pytest.fixture
def graph():
    return barabasi_albert(150, 3, seed=7)


@pytest.fixture
def rgx_factory(tmp_path):
    """Write distinct small ``.rgx`` stores on demand; returns paths."""

    def make(name: str, seed: int = 0):
        path = tmp_path / f"{name}.rgx"
        save_mmap(erdos_renyi(40, 0.15, seed=seed), path)
        return str(path)

    return make


# ----------------------------------------------------------------------
# QueryPool
# ----------------------------------------------------------------------


class TestQueryPool:
    def test_run_executes_on_worker_thread(self):
        import threading

        async def go():
            with QueryPool(workers=1) as pool:
                name = await pool.run(lambda: threading.current_thread().name)
            return name

        assert run(go()).startswith("repro-query")

    def test_run_propagates_exceptions(self):
        async def go():
            with QueryPool(workers=1) as pool:
                with pytest.raises(ValueError, match="boom"):
                    await pool.run(self._raise)

        run(go())

    @staticmethod
    def _raise():
        raise ValueError("boom")

    def test_rejects_zero_workers(self):
        with pytest.raises(ValueError):
            QueryPool(workers=0)


# ----------------------------------------------------------------------
# SessionRegistry
# ----------------------------------------------------------------------


class TestSessionRegistry:
    def test_path_hit_returns_same_session(self, rgx_factory):
        registry = SessionRegistry()
        path = rgx_factory("a")
        first = registry.get(path)
        second = registry.get(path)
        assert first is second
        stats = registry.stats()
        assert stats["hits"] == 1 and stats["misses"] == 1
        registry.clear()

    def test_unknown_key_raises(self, tmp_path):
        registry = SessionRegistry()
        with pytest.raises(FileNotFoundError, match="unknown graph"):
            registry.get(str(tmp_path / "nope.rgx"))

    def test_lru_displacement_releases_mmap_store(self, rgx_factory):
        registry = SessionRegistry(max_sessions=2)
        first = registry.get(rgx_factory("a", seed=1))
        store = first.graph.backing_store
        assert store is not None and not store.closed
        registry.get(rgx_factory("b", seed=2))
        registry.get(rgx_factory("c", seed=3))  # displaces "a"
        assert len(registry) == 2
        assert store.closed  # mmap sections (and their fds) released
        assert registry.stats()["evictions_lru"] == 1
        registry.clear()

    def test_lru_order_follows_recency_not_insertion(self, rgx_factory):
        registry = SessionRegistry(max_sessions=2)
        path_a = rgx_factory("a", seed=1)
        registry.get(path_a)
        second = registry.get(rgx_factory("b", seed=2))
        registry.get(path_a)  # touch "a": now "b" is the LRU
        registry.get(rgx_factory("c", seed=3))
        assert second.graph.backing_store.closed
        assert path_a in registry.keys()[0]
        registry.clear()

    def test_ttl_expiry_releases_store(self, rgx_factory):
        now = [0.0]
        registry = SessionRegistry(ttl_seconds=10.0, clock=lambda: now[0])
        session = registry.get(rgx_factory("a"))
        store = session.graph.backing_store
        now[0] = 5.0
        registry.get(rgx_factory("a"))  # refreshes last_used
        now[0] = 14.0
        assert not store.closed  # idle 9s < ttl
        registry.get(rgx_factory("b", seed=9))  # lazy sweep runs here
        assert len(registry) == 2
        now[0] = 16.0  # "a" idle 11s > ttl; "b" idle 2s stays
        registry.get(rgx_factory("b", seed=9))
        assert store.closed
        assert registry.stats()["evictions_ttl"] == 1
        registry.clear()

    def test_registered_graph_eviction_keeps_caller_store(self, rgx_factory):
        registry = SessionRegistry(max_sessions=1)
        owned = MiningSession(rgx_factory("a"))
        registry.register("mem", owned)
        registry.get(rgx_factory("b", seed=2))  # displaces "mem"
        assert "mem" not in registry
        # Caller-owned store survives eviction of a registered session.
        assert not owned.graph.backing_store.closed
        owned.close(release_store=True)
        registry.clear()

    def test_reregister_installs_fresh_session(self, graph):
        registry = SessionRegistry()
        first = registry.register("g", graph)
        assert first.count(generate_clique(3)) >= 0  # warm the plan cache
        second = registry.register("g", graph)
        assert second is not first
        assert registry.get("g") is second
        assert registry.stats()["evictions_explicit"] == 1
        registry.clear()

    def test_register_rejects_other_types(self):
        registry = SessionRegistry()
        with pytest.raises(TypeError):
            registry.register("g", [1, 2, 3])

    def test_resolve_key_prefers_registered_name(self, graph):
        registry = SessionRegistry()
        registry.register("g", graph)
        assert registry.resolve_key("g") == "g"
        resolved = registry.resolve_key("some/relative/path.rgx")
        assert resolved.startswith("/") or resolved[1:3] == ":\\"
        registry.clear()

    def test_evict_reports_residency(self, graph):
        registry = SessionRegistry()
        registry.register("g", graph)
        assert registry.evict("g") is True
        assert registry.evict("g") is False


# ----------------------------------------------------------------------
# Session close
# ----------------------------------------------------------------------


class TestSessionClose:
    def test_close_clears_graph_session_cache(self, graph):
        session = MiningSession.for_graph(graph)
        assert MiningSession.for_graph(graph) is session
        session.close()
        assert MiningSession.for_graph(graph) is not session

    def test_close_without_release_keeps_store_open(self, rgx_factory):
        session = MiningSession(rgx_factory("a"))
        store = session.graph.backing_store
        session.close()
        assert not store.closed
        session.close(release_store=True)
        assert store.closed
        session.close(release_store=True)  # idempotent


# ----------------------------------------------------------------------
# Batching: fused results must equal sequential single-request results
# ----------------------------------------------------------------------


SPECS = ["clique:3", "star:3", "chain:3", "chain:4", "clique:3", "star:4"]
PATTERNS = {
    "clique:3": generate_clique(3),
    "star:3": generate_star(3),
    "star:4": generate_star(4),
    "chain:3": generate_chain(3),
    "chain:4": generate_chain(4),
}


class TestBatchingCorrectness:
    def test_fused_counts_match_sequential(self, graph):
        service = MiningService(ServiceConfig(workers=2, max_wait_ms=20.0))
        service.register_graph("g", graph)
        truth = MiningSession(graph)

        async def go():
            requests = [
                {"verb": "count", "graph": "g", "pattern": spec}
                for spec in SPECS
            ]
            return await asyncio.gather(
                *[service.handle(r) for r in requests]
            )

        responses = run(self._with_close(service, go))
        for spec, response in zip(SPECS, responses):
            assert response["ok"], response
            assert response["result"]["count"] == truth.count(PATTERNS[spec])
        snapshot = service.metrics.snapshot()
        assert snapshot["batching"]["fused_requests"] >= len(SPECS)
        # clique:3 appears twice: the duplicate rides its sibling's walk.
        assert snapshot["batching"]["deduped_requests"] >= 1
        assert snapshot["batching"]["fusion_batch_rate"] > 0.0

    def test_match_rows_agree_with_sequential(self, graph):
        service = MiningService(ServiceConfig(workers=2, max_wait_ms=20.0))
        service.register_graph("g", graph)
        truth = MiningSession(graph)

        async def go():
            requests = [
                {"verb": "match", "graph": "g", "pattern": "clique:3",
                 "limit": 10_000},
                {"verb": "count", "graph": "g", "pattern": "star:3"},
                {"verb": "match", "graph": "g", "pattern": "clique:3",
                 "limit": 2},
            ]
            return await asyncio.gather(
                *[service.handle(r) for r in requests]
            )

        full, star, capped = run(self._with_close(service, go))
        expected_rows: list[tuple[int, ...]] = []
        expected = truth.match(
            generate_clique(3), lambda m: expected_rows.append(tuple(m.mapping))
        )
        assert full["result"]["count"] == expected
        assert sorted(map(tuple, full["result"]["matches"])) == sorted(
            expected_rows
        )
        assert star["result"]["count"] == truth.count(generate_star(3))
        assert capped["result"]["count"] == expected  # count stays exact
        assert capped["result"]["returned"] == 2

    def test_batching_disabled_still_correct(self, graph):
        service = MiningService(ServiceConfig(workers=2, batching=False))
        service.register_graph("g", graph)
        truth = MiningSession(graph)

        async def go():
            requests = [
                {"verb": "count", "graph": "g", "pattern": spec}
                for spec in SPECS
            ]
            return await asyncio.gather(
                *[service.handle(r) for r in requests]
            )

        responses = run(self._with_close(service, go))
        for spec, response in zip(SPECS, responses):
            assert response["result"]["count"] == truth.count(PATTERNS[spec])
        snapshot = service.metrics.snapshot()
        assert snapshot["batching"]["batched_requests"] == 0
        assert snapshot["batching"]["solo_requests"] == len(SPECS)

    def test_distinct_options_never_share_a_bucket(self, graph):
        service = MiningService(ServiceConfig(workers=2, max_wait_ms=20.0))
        service.register_graph("g", graph)
        truth = MiningSession(graph)

        async def go():
            requests = [
                {"verb": "count", "graph": "g", "pattern": "chain:3",
                 "options": {"edge_induced": True}},
                {"verb": "count", "graph": "g", "pattern": "chain:3",
                 "options": {"edge_induced": False}},
            ]
            return await asyncio.gather(
                *[service.handle(r) for r in requests]
            )

        edge, vertex = run(self._with_close(service, go))
        assert edge["result"]["count"] == truth.count(
            generate_chain(3), edge_induced=True
        )
        assert vertex["result"]["count"] == truth.count(
            generate_chain(3), edge_induced=False
        )
        sizes = service.metrics.snapshot()["batching"]["batch_sizes"]
        assert sizes.get("1", 0) == 2  # two buckets, no false fusion

    @staticmethod
    async def _with_close(service, body):
        try:
            return await body()
        finally:
            await service.close()


# ----------------------------------------------------------------------
# Failure isolation inside a coalesced batch
# ----------------------------------------------------------------------


class TestBatchFailureIsolation:
    def test_guard_refusal_does_not_poison_siblings(self, monkeypatch):
        """One refused member -> structured error; siblings still answer."""
        # Dense enough that second-level growth > 1, so the probe's
        # prediction scales with pattern width and a threshold can sit
        # between a 3-vertex and a 5-vertex pattern deterministically.
        dense = erdos_renyi(200, 0.1, seed=1)
        session = MiningSession(dense)
        small = session._guard_estimate(
            generate_chain(3), session.options(guard="refuse")
        )
        big = session._guard_estimate(
            generate_star(5), session.options(guard="refuse")
        )
        assert big.predicted_partials > small.predicted_partials
        threshold = (small.predicted_partials + big.predicted_partials) / 2
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", threshold)

        service = MiningService(ServiceConfig(workers=2, max_wait_ms=20.0))
        service.register_graph("g", dense)

        async def go():
            requests = [
                {"verb": "count", "graph": "g", "pattern": "chain:3",
                 "options": {"guard": "refuse"}},
                {"verb": "count", "graph": "g", "pattern": "star:5",
                 "options": {"guard": "refuse"}},
                {"verb": "count", "graph": "g", "pattern": "clique:3",
                 "options": {"guard": "refuse"}},
            ]
            return await asyncio.gather(
                *[service.handle(r) for r in requests]
            )

        ok_chain, refused, ok_clique = run(
            TestBatchingCorrectness._with_close(service, go)
        )
        assert ok_chain["ok"] and ok_clique["ok"]
        assert ok_chain["result"]["count"] == session.count(generate_chain(3))
        assert ok_clique["result"]["count"] == session.count(
            generate_clique(3)
        )
        assert not refused["ok"]
        assert refused["error"]["code"] == "query_refused"
        assert refused["error"]["estimate"]["predicted_partials"] > threshold
        assert refused["error"]["partial"]["truncated"] is True

    def test_budgeted_request_runs_solo_and_fails_alone(self, graph):
        service = MiningService(ServiceConfig(workers=2, max_wait_ms=20.0))
        service.register_graph("g", graph)
        truth = MiningSession(graph)

        async def go():
            requests = [
                {"verb": "count", "graph": "g", "pattern": "clique:3"},
                # A deadline this small trips at the first cooperative
                # poll, well before the walk completes.
                {"verb": "count", "graph": "g", "pattern": "star:4",
                 "timeout_ms": 1e-6},
                {"verb": "count", "graph": "g", "pattern": "chain:3"},
            ]
            return await asyncio.gather(
                *[service.handle(r) for r in requests]
            )

        ok_a, timed_out, ok_b = run(
            TestBatchingCorrectness._with_close(service, go)
        )
        assert ok_a["result"]["count"] == truth.count(generate_clique(3))
        assert ok_b["result"]["count"] == truth.count(generate_chain(3))
        assert not timed_out["ok"]
        assert timed_out["error"]["code"] == "budget_exceeded"
        assert timed_out["error"]["partial"]["truncated"] is True
        # The budgeted request never joined a batch.
        assert service.metrics.snapshot()["batching"]["solo_requests"] == 1

    def test_fused_failure_falls_back_per_job(self, graph, monkeypatch):
        """If the fused call itself dies, every member re-runs alone."""
        session = MiningSession(graph)
        metrics = ServiceMetrics()

        def sabotaged_match_many(self, patterns, callbacks=None, **options):
            raise RuntimeError("fused walk exploded")

        monkeypatch.setattr(
            MiningSession, "match_many", sabotaged_match_many
        )
        truth_clique = session.count(generate_clique(3))
        truth_star = session.count(generate_star(3))

        async def go():
            with QueryPool(workers=1) as pool:
                queue = BatchingQueue(
                    pool, metrics, max_wait_ms=60_000.0, max_batch=2
                )
                results = await asyncio.gather(
                    queue.submit(
                        "g", session, QueryJob("count", generate_clique(3))
                    ),
                    queue.submit(
                        "g", session, QueryJob("count", generate_star(3))
                    ),
                )
                await queue.close()
                return results

        clique, star = run(go())
        assert clique.count == truth_clique
        assert star.count == truth_star


# ----------------------------------------------------------------------
# Dispatch surface / response shapes
# ----------------------------------------------------------------------


class TestDispatch:
    @pytest.fixture
    def service(self, graph):
        service = MiningService(ServiceConfig(workers=1, max_wait_ms=1.0))
        service.register_graph("g", graph)
        yield service
        run(service.close())

    def test_unknown_verb(self, service):
        response = run(service.handle({"verb": "shred", "graph": "g"}))
        assert not response["ok"]
        assert response["error"]["code"] == "invalid_request"
        assert "shred" in response["error"]["message"]

    def test_non_dict_payload(self, service):
        response = run(service.handle([1, 2]))
        assert response["error"]["code"] == "invalid_request"

    def test_unknown_option_rejected(self, service):
        response = run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "clique:3",
                 "options": {"num_processes": 4}}
            )
        )
        assert response["error"]["code"] == "invalid_request"
        assert "num_processes" in response["error"]["message"]

    def test_option_type_checked(self, service):
        response = run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "clique:3",
                 "options": {"frontier_chunk": True}}
            )
        )
        assert response["error"]["code"] == "invalid_request"

    def test_bad_budget_field(self, service):
        response = run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "clique:3",
                 "budget": {"max_seconds": 1}}
            )
        )
        assert response["error"]["code"] == "invalid_request"

    def test_bad_pattern_spec(self, service):
        response = run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "hexagon"}
            )
        )
        assert response["error"]["code"] == "invalid_pattern"

    def test_unknown_graph_maps_to_404(self, service):
        response = run(
            service.handle(
                {"verb": "count", "graph": "no/such.rgx",
                 "pattern": "clique:3"}
            )
        )
        assert response["error"]["code"] == "unknown_graph"
        assert response["error"]["status"] == 404

    def test_exists_verb(self, service, graph):
        truth = MiningSession(graph)
        response = run(
            service.handle(
                {"verb": "exists", "graph": "g", "pattern": "clique:3"}
            )
        )
        assert response["ok"]
        assert response["result"]["exists"] == truth.exists(
            generate_clique(3)
        )

    def test_motifs_verb(self, service, graph):
        from repro.mining.motifs import motif_counts

        truth = {
            pattern: count
            for pattern, count in motif_counts(graph, 3).items()
        }
        response = run(
            service.handle({"verb": "motifs", "graph": "g", "size": 3})
        )
        assert response["ok"]
        assert sorted(response["result"]["counts"].values()) == sorted(
            truth.values()
        )

    def test_motifs_size_validated(self, service):
        response = run(
            service.handle({"verb": "motifs", "graph": "g", "size": 2})
        )
        assert response["error"]["code"] == "invalid_request"

    def test_stats_verb_shape(self, service):
        run(service.handle({"verb": "count", "graph": "g",
                            "pattern": "clique:3"}))
        response = run(service.handle({"verb": "stats"}))
        assert response["ok"]
        snapshot = response["result"]
        assert "count" in snapshot["requests"]
        assert "count" in snapshot["latency_ms"]
        assert snapshot["registry"]["sessions"] == 1
        assert "fusion_batch_rate" in snapshot["batching"]

    def test_errors_counted_per_verb(self, service):
        run(service.handle({"verb": "count", "graph": "g",
                            "pattern": "bogus"}))
        snapshot = service.stats()
        assert snapshot["errors"]["count"]["invalid_pattern"] == 1


# ----------------------------------------------------------------------
# Metrics
# ----------------------------------------------------------------------


class TestMetrics:
    def test_histogram_quantiles_bracket_observations(self):
        histogram = LatencyHistogram()
        for ms in (0.3, 0.7, 3.0, 40.0, 9000.0):
            histogram.observe(ms)
        snapshot = histogram.snapshot()
        assert snapshot["count"] == 5
        assert snapshot["max_ms"] == 9000.0
        assert snapshot["p50_ms_le"] >= 3.0
        assert snapshot["buckets"]["overflow"] == 1

    def test_fusion_rate_definition(self):
        metrics = ServiceMetrics()
        metrics.record_batch(3, deduped=1)
        metrics.record_batch(1)
        metrics.record_solo()
        batching = metrics.snapshot()["batching"]
        assert batching["batches"] == 2
        assert batching["fused_batches"] == 1
        assert batching["fused_requests"] == 3
        # 3 fused of (3 + 1 batched-alone + 1 solo) executed requests.
        assert batching["fusion_batch_rate"] == pytest.approx(3 / 5)
        assert batching["deduped_requests"] == 1
        assert batching["max_batch_size"] == 3

    def test_registry_stats_folded_into_snapshot(self):
        metrics = ServiceMetrics()
        snapshot = metrics.snapshot(registry_stats={"sessions": 2})
        assert snapshot["registry"] == {"sessions": 2}


# ----------------------------------------------------------------------
# Queue edge cases
# ----------------------------------------------------------------------


class TestBatchingQueue:
    def test_max_batch_flushes_immediately(self, graph):
        session = MiningSession(graph)
        metrics = ServiceMetrics()

        async def go():
            with QueryPool(workers=1) as pool:
                # A wait window far longer than the test: only the
                # max_batch trigger can flush these.
                queue = BatchingQueue(
                    pool, metrics, max_wait_ms=60_000.0, max_batch=2
                )
                results = await asyncio.gather(
                    queue.submit(
                        "g", session, QueryJob("count", generate_clique(3))
                    ),
                    queue.submit(
                        "g", session, QueryJob("count", generate_star(3))
                    ),
                )
                await queue.close()
                return results

        clique, star = run(go())
        assert clique.count == session.count(generate_clique(3))
        assert star.count == session.count(generate_star(3))
        assert metrics.snapshot()["batching"]["max_batch_size"] == 2

    def test_close_flushes_pending_bucket(self, graph):
        session = MiningSession(graph)
        metrics = ServiceMetrics()

        async def go():
            with QueryPool(workers=1) as pool:
                queue = BatchingQueue(
                    pool, metrics, max_wait_ms=60_000.0, max_batch=64
                )
                pending = asyncio.ensure_future(
                    queue.submit(
                        "g", session, QueryJob("count", generate_clique(3))
                    )
                )
                await asyncio.sleep(0)  # let submit() park in the bucket
                await queue.close()
                return await pending

        assert run(go()).count == session.count(generate_clique(3))

    def test_validates_parameters(self, graph):
        metrics = ServiceMetrics()
        with QueryPool(workers=1) as pool:
            with pytest.raises(ValueError):
                BatchingQueue(pool, metrics, max_wait_ms=-1.0)
            with pytest.raises(ValueError):
                BatchingQueue(pool, metrics, max_batch=0)


# ----------------------------------------------------------------------
# Labeled graphs through the service
# ----------------------------------------------------------------------


class TestLabeledService:
    def test_labeled_pattern_batches_correctly(self):
        graph = with_random_labels(
            barabasi_albert(120, 3, seed=5), num_labels=3, seed=5
        )
        service = MiningService(ServiceConfig(workers=2, max_wait_ms=20.0))
        service.register_graph("g", graph)
        truth = MiningSession(graph)

        async def go():
            requests = [
                {"verb": "count", "graph": "g", "pattern": "p1"},
                {"verb": "count", "graph": "g", "pattern": "clique:3"},
            ]
            return await asyncio.gather(
                *[service.handle(r) for r in requests]
            )

        p1_response, clique_response = run(
            TestBatchingCorrectness._with_close(service, go)
        )
        from repro.cli.parsing import parse_pattern_spec

        assert p1_response["result"]["count"] == truth.count(
            parse_pattern_spec("p1")
        )
        assert clique_response["result"]["count"] == truth.count(
            generate_clique(3)
        )


# ----------------------------------------------------------------------
# Adaptive plan echo
# ----------------------------------------------------------------------


class TestPlanEcho:
    """plan="auto" requests echo the chosen plan and feed the gauges."""

    @pytest.fixture
    def service(self, graph):
        service = MiningService(ServiceConfig(workers=1, max_wait_ms=1.0))
        service.register_graph("g", graph)
        yield service
        run(service.close())

    def test_count_echoes_plan_and_counts_agree(self, service, graph):
        truth = MiningSession(graph)
        fixed = run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "clique:3"}
            )
        )
        auto = run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "clique:3",
                 "options": {"plan": "auto"}}
            )
        )
        assert fixed["ok"] and auto["ok"]
        assert auto["result"]["count"] == fixed["result"]["count"]
        assert auto["result"]["count"] == truth.count(generate_clique(3))
        assert "plan" not in fixed["result"]
        echoed = auto["result"]["plan"]
        assert echoed["engine"] in ("reference", "accel", "accel-batch")
        assert echoed["schedule"] in ("static", "dynamic")
        assert echoed["estimate"]["frontier_size"] > 0
        assert echoed["reasons"]

    def test_match_echoes_plan(self, service):
        response = run(
            service.handle(
                {"verb": "match", "graph": "g", "pattern": "chain:3",
                 "limit": 5, "options": {"plan": "auto"}}
            )
        )
        assert response["ok"], response
        assert response["result"]["plan"]["engine"]

    def test_plan_gauges_in_stats(self, service):
        run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "clique:3",
                 "options": {"plan": "auto"}}
            )
        )
        stats = run(service.handle({"verb": "stats"}))
        gauges = stats["result"]["planner"]
        assert gauges["planned_queries"] == 1
        assert sum(gauges["engines"].values()) == 1
        assert sum(gauges["schedules"].values()) == 1

    def test_bogus_plan_value_is_invalid_request(self, service):
        response = run(
            service.handle(
                {"verb": "count", "graph": "g", "pattern": "clique:3",
                 "options": {"plan": "always"}}
            )
        )
        assert not response["ok"]
        assert response["error"]["code"] in (
            "invalid_request", "invalid_query", "internal_error"
        )
