"""Tests for the public match/count/exists API surface."""

import pytest

from repro.core import count, count_many, exists, match, generate_plan
from repro.errors import MatchingError
from repro.graph import erdos_renyi, from_edges, with_random_labels
from repro.pattern import (
    Pattern,
    generate_all_vertex_induced,
    generate_clique,
    generate_star,
)


class TestCount:
    def test_count_matches_callback_total(self, random_graph):
        p = generate_star(4)
        calls = []
        n = match(random_graph, p, callback=lambda m: calls.append(1))
        assert n == len(calls) == count(random_graph, p)

    def test_count_many(self, random_graph):
        patterns = generate_all_vertex_induced(3)
        counts = count_many(random_graph, patterns, edge_induced=False)
        assert set(counts) == set(patterns)
        for p, n in counts.items():
            assert n == count(random_graph, p, edge_induced=False)

    def test_precomputed_plan_reused(self, random_graph):
        p = generate_clique(3)
        plan = generate_plan(p)
        assert count(random_graph, p, plan=plan) == count(random_graph, p)


class TestExists:
    def test_exists_positive(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        assert exists(g, generate_clique(3))

    def test_exists_negative(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])
        assert not exists(g, generate_clique(3))

    def test_exists_vertex_induced(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)])
        wedge = Pattern.from_edges([(0, 1), (1, 2)])
        # Every wedge in K3 closes into a triangle: no vertex-induced wedge.
        assert not exists(g, wedge, edge_induced=False)
        assert exists(g, wedge)  # but edge-induced wedges exist


class TestLabeledMatching:
    def test_labeled_pattern_on_unlabeled_graph_raises(self, random_graph):
        p = generate_clique(3)
        p.set_label(0, 1)
        with pytest.raises(MatchingError):
            count(random_graph, p)

    def test_label_constraints_filter(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)], labels=[1, 1, 2])
        p = generate_clique(3)
        p.set_label(0, 1)
        p.set_label(1, 1)
        p.set_label(2, 2)
        assert count(g, p) == 1
        p2 = generate_clique(3)
        for u in range(3):
            p2.set_label(u, 1)
        assert count(g, p2) == 0

    def test_partial_labels(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)], labels=[1, 1, 2])
        p = generate_clique(3)
        p.set_label(0, 2)  # one pinned vertex, two wildcards
        assert count(g, p) == 1

    def test_labeled_count_vs_oracle(self, labeled_graph):
        import networkx as nx

        from repro.pattern import automorphism_count

        p = generate_clique(3)
        p.set_label(0, 0)
        p.set_label(1, 1)
        p.set_label(2, 2)
        G = labeled_graph.to_networkx()
        raw = 0
        from itertools import permutations

        for a, b, c in permutations(range(labeled_graph.num_vertices), 3):
            if (
                G.has_edge(a, b)
                and G.has_edge(b, c)
                and G.has_edge(a, c)
                and G.nodes[a]["label"] == 0
                and G.nodes[b]["label"] == 1
                and G.nodes[c]["label"] == 2
            ):
                raw += 1
        assert count(labeled_graph, p) == raw // automorphism_count(p)
