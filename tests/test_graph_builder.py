"""Tests for graph construction helpers."""

import pytest

from repro.errors import GraphError
from repro.graph import from_adjacency, from_edges, induced_subgraph


class TestFromEdges:
    def test_negative_vertex_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(-1, 0)])

    def test_num_vertices_too_small_rejected(self):
        with pytest.raises(GraphError):
            from_edges([(0, 5)], num_vertices=3)

    def test_labels_as_mapping_defaults_to_zero(self):
        g = from_edges([(0, 1), (1, 2)], labels={1: 7})
        assert g.label(0) == 0
        assert g.label(1) == 7

    def test_labels_as_sequence_sets_vertex_count(self):
        g = from_edges([(0, 1)], labels=[1, 2, 3])
        assert g.num_vertices == 3

    def test_labels_sequence_wrong_length(self):
        with pytest.raises(GraphError):
            from_edges([(0, 2)], labels=[1, 2])

    def test_name_carried(self):
        assert from_edges([(0, 1)], name="abc").name == "abc"


class TestFromAdjacency:
    def test_symmetrizes(self):
        g = from_adjacency({0: [1, 2], 3: []})
        assert g.has_edge(1, 0)
        assert g.num_vertices == 4

    def test_empty(self):
        g = from_adjacency({})
        assert g.num_vertices == 0


class TestInducedSubgraph:
    def test_keeps_internal_edges_only(self):
        g = from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        sub = induced_subgraph(g, [0, 1, 2])
        assert sub.num_vertices == 3
        assert set(sub.edges()) == {(0, 1), (1, 2)}

    def test_renames_densely(self):
        g = from_edges([(0, 5), (5, 9)])
        sub = induced_subgraph(g, [5, 9])
        assert sub.num_vertices == 2
        assert sub.has_edge(0, 1)

    def test_preserves_labels(self):
        g = from_edges([(0, 1), (1, 2)], labels=[3, 4, 5])
        sub = induced_subgraph(g, [1, 2])
        assert sub.label(0) == 4
        assert sub.label(1) == 5

    def test_duplicates_ignored(self):
        g = from_edges([(0, 1)])
        sub = induced_subgraph(g, [0, 0, 1, 1])
        assert sub.num_vertices == 2
