"""Storage-tier tests: the ``.rgx`` mmap store and array-backed graphs.

The out-of-core tier must be invisible in results (an mmap-backed graph
pins its list-backed twin across every engine) and visible in cost (a
cold open does O(header) work, never a full adjacency materialization).
This suite fuzz-pins the round trip over the graph feature matrix,
rejects malformed files loudly, guards the lazy-open property, checks
engine/backing parity, and unit-tests the roaring hub-membership kernels
the CSR views compile for power-law hubs.
"""

from __future__ import annotations

import os
import struct
import tempfile

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

np = pytest.importorskip("numpy")

from repro.core import MiningSession, as_session, count  # noqa: E402
from repro.core.accel import (  # noqa: E402
    AcceleratedGraphView,
    FrontierBatchedEngine,
    HubMembershipIndex,
    ROARING_HUB_MIN_DEGREE,
    hub_degree_threshold,
)
from repro.bitmap import RoaringBitmap  # noqa: E402
from repro.errors import GraphFormatError  # noqa: E402
from repro.graph import (  # noqa: E402
    GraphStore,
    barabasi_albert,
    erdos_renyi,
    from_edges,
    load_mmap,
    load_npz,
    open_graph,
    power_law,
    save_edge_list,
    save_mmap,
    save_npz,
    with_random_labels,
)
from repro.graph.binary_io import MMAP_MAGIC, MMAP_VERSION  # noqa: E402
from repro.pattern import Pattern, generate_clique, generate_star  # noqa: E402

seeds = st.integers(min_value=0, max_value=40)


def _fuzz_graph(seed: int):
    """Graphs sweeping the storage feature matrix (labels, isolation, …)."""
    kind = seed % 5
    if kind == 0:
        return erdos_renyi(30 + seed, 0.15, seed=seed)
    if kind == 1:
        return with_random_labels(
            erdos_renyi(25 + seed, 0.2, seed=seed), 3, seed=seed
        )
    if kind == 2:  # isolated vertices at both ends of the id range
        return from_edges([(1, 2), (2, 3)], num_vertices=8 + seed % 4)
    if kind == 3:
        return power_law(40 + seed, gamma=2.0, seed=seed)
    return from_edges([], num_vertices=seed % 3)  # empty / edgeless


def _rgx_path(tmp: str) -> str:
    return os.path.join(tmp, "g.rgx")


class TestRgxRoundtrip:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_roundtrip_equals_source(self, seed):
        g = _fuzz_graph(seed)
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            h = load_mmap(path)
            assert h.backing == "array"
            assert h == g
            assert h.num_vertices == g.num_vertices
            assert h.num_edges == g.num_edges
            for v in g.vertices():
                assert list(h.neighbors(v)) == list(g.neighbors(v))
                assert h.degree(v) == g.degree(v)
            if g.labels() is None:
                assert h.labels() is None
            else:
                assert list(h.labels()) == list(g.labels())

    def test_name_defaults_to_basename(self):
        g = from_edges([(0, 1)])
        with tempfile.TemporaryDirectory() as tmp:
            path = os.path.join(tmp, "citations.rgx")
            save_mmap(g, path)
            assert load_mmap(path).name == "citations"
            assert load_mmap(path, name="override").name == "override"

    def test_degree_sorted_flag_round_trips(self):
        g = erdos_renyi(40, 0.2, seed=3)
        ordered, _ = g.degree_ordered()
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(ordered, path)
            store = GraphStore(path)
            assert store.degree_sorted
            h = store.graph()
            assert h.is_degree_ordered()
            # degree_ordered on an already-sorted store is the identity.
            again, translation = h.degree_ordered()
            assert again is h
            assert list(translation) == list(range(h.num_vertices))

    def test_store_info_matches_header(self):
        g = with_random_labels(erdos_renyi(30, 0.2, seed=5), 2, seed=1)
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            info = GraphStore(path).info()
            assert info["num_vertices"] == g.num_vertices
            assert info["num_edges"] == g.num_edges
            assert info["has_labels"] is True
            assert info["version"] == MMAP_VERSION
            assert info["file_size"] == os.path.getsize(path)

    def test_open_graph_routes_by_extension(self):
        g = erdos_renyi(25, 0.2, seed=9)
        with tempfile.TemporaryDirectory() as tmp:
            rgx = os.path.join(tmp, "g.rgx")
            npz = os.path.join(tmp, "g.npz")
            txt = os.path.join(tmp, "g.edges")
            save_mmap(g, rgx)
            save_npz(g, npz)
            save_edge_list(g, txt)
            assert open_graph(rgx) == g
            assert open_graph(npz) == g
            assert open_graph(txt) == g


class TestRgxValidation:
    def _valid_bytes(self) -> bytes:
        g = erdos_renyi(20, 0.3, seed=1)
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            with open(path, "rb") as fh:
                return fh.read()

    def _expect_rejection(self, payload: bytes):
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            with open(path, "wb") as fh:
                fh.write(payload)
            with pytest.raises(GraphFormatError):
                GraphStore(path)

    def test_rejects_bad_magic(self):
        blob = bytearray(self._valid_bytes())
        blob[:8] = b"NOTAGRPH"
        self._expect_rejection(bytes(blob))

    def test_rejects_wrong_version(self):
        blob = bytearray(self._valid_bytes())
        struct.pack_into("<q", blob, 8, MMAP_VERSION + 1)
        self._expect_rejection(bytes(blob))

    def test_rejects_negative_counts(self):
        blob = bytearray(self._valid_bytes())
        struct.pack_into("<q", blob, 16, -5)
        self._expect_rejection(bytes(blob))

    def test_rejects_truncated_sections(self):
        blob = self._valid_bytes()
        self._expect_rejection(blob[: len(blob) - 16])

    def test_rejects_short_header(self):
        self._expect_rejection(MMAP_MAGIC + b"\0" * 8)

    def test_rejects_offsets_span_mismatch(self):
        blob = bytearray(self._valid_bytes())
        # Corrupt the final offset (last int64 of the offsets section).
        g_n = struct.unpack_from("<q", blob, 16)[0]
        struct.pack_into("<q", blob, 64 + g_n * 8, 1)
        self._expect_rejection(bytes(blob))

    def test_rejects_missing_file(self):
        with pytest.raises(GraphFormatError):
            GraphStore("/nonexistent/definitely-not-here.rgx")


class TestColdStartIsLazy:
    def test_load_does_no_adjacency_materialization(self):
        """Opening a store is O(header): the acceptance-criteria guard.

        The loaded graph must keep ``memmap`` sections (no list-of-lists
        rebuild) and the Python-side allocations of the open itself must
        stay far below the neighbor payload size.
        """
        import tracemalloc

        g = power_law(3000, gamma=2.0, seed=11)
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            payload = 2 * g.num_edges * 8  # neighbor section bytes
            assert payload > 200_000  # the guard must have teeth
            tracemalloc.start()
            h = load_mmap(path)
            _, peak = tracemalloc.get_traced_memory()
            tracemalloc.stop()
            assert h._adj is None  # no per-vertex Python lists
            assert peak < payload // 4
            # ... and the pages really are the file's mapped sections,
            # not copies (asarray re-wraps the memmap as a plain view).
            assert h.backing_store is not None
            assert h.backing_store.path == path
            assert isinstance(h.backing_store.neighbors, np.memmap)
            assert np.shares_memory(h._flat, h.backing_store.neighbors)
            assert np.shares_memory(h._offsets, h.backing_store.offsets)
            del h

    def test_engine_view_aliases_mapped_sections(self):
        """The CSR view must wrap the mapped arrays, not copy them."""
        g = erdos_renyi(60, 0.2, seed=7)
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            h = load_mmap(path)
            view = AcceleratedGraphView(h)
            flat, offsets, _ = view.csr()
            assert flat is h._flat or np.shares_memory(flat, h._flat)
            assert offsets is h._offsets or np.shares_memory(
                offsets, h._offsets
            )


ENGINES = ("reference", "accel", "accel-batch")


class TestMmapEngineParity:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_counts_pin_list_backed(self, seed):
        g = _fuzz_graph(seed)
        kind = seed % 3
        if kind == 0:
            p, edge_induced = generate_clique(3), True
        elif kind == 1:
            p, edge_induced = generate_star(3), False
        else:
            p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
            edge_induced = True
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            h = load_mmap(path)
            for engine in ENGINES:
                expected = count(g, p, edge_induced=edge_induced, engine=engine)
                got = count(h, p, edge_induced=edge_induced, engine=engine)
                assert got == expected, engine

    def test_labeled_counts_pin_list_backed(self):
        g = with_random_labels(erdos_renyi(50, 0.18, seed=13), 3, seed=2)
        p = generate_clique(3)
        p.set_label(0, 1)
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            h = load_mmap(path)
            for engine in ENGINES:
                assert count(h, p, engine=engine) == count(
                    g, p, engine=engine
                ), engine


class TestPathAcceptance:
    def test_session_accepts_path_store_and_graph(self):
        g = erdos_renyi(40, 0.2, seed=21)
        p = generate_clique(3)
        expected = count(g, p)
        with tempfile.TemporaryDirectory() as tmp:
            path = _rgx_path(tmp)
            save_mmap(g, path)
            assert MiningSession(path).count(p) == expected
            store = GraphStore(path)
            s1 = MiningSession.for_graph(store)
            s2 = as_session(store)
            assert s1 is s2  # shared session on the store's cached graph
            assert s1.count(p) == expected

    def test_as_session_rejects_junk(self):
        with pytest.raises(TypeError):
            as_session(42)

    def test_cli_convert_info_count_pipeline(self, tmp_path, capsys):
        from repro.cli.main import main

        g = erdos_renyi(30, 0.2, seed=17)
        edges = tmp_path / "g.edges"
        rgx = tmp_path / "g.rgx"
        save_edge_list(g, edges)
        assert main(
            ["graph", "convert", str(edges), str(rgx), "--degree-order"]
        ) == 0
        out = capsys.readouterr().out
        assert f"{g.num_vertices} vertices" in out
        assert main(["graph", "info", str(rgx)]) == 0
        out = capsys.readouterr().out
        assert "degree_sorted: True" in out
        assert main(
            ["count", "--graph", str(rgx), "--pattern", "clique:3"]
        ) == 0
        out = capsys.readouterr().out
        assert f"matches: {count(g, generate_clique(3))}" in out

    def test_cli_convert_rejects_labels_for_binary_input(self, tmp_path):
        from repro.cli.main import main

        g = erdos_renyi(10, 0.3, seed=1)
        rgx = tmp_path / "g.rgx"
        save_mmap(g, rgx)
        with pytest.raises(SystemExit):
            main(
                [
                    "graph", "convert", str(rgx), str(tmp_path / "h.rgx"),
                    "--labels", str(tmp_path / "labels.txt"),
                ]
            )


class TestRoaringBulkKernels:
    @given(
        st.lists(
            st.integers(min_value=0, max_value=200_000),
            max_size=300,
            unique=True,
        )
    )
    @settings(max_examples=30, deadline=None)
    def test_from_sorted_matches_incremental(self, values):
        values = sorted(values)
        assert RoaringBitmap.from_sorted(values) == RoaringBitmap(values)

    def test_from_sorted_rejects_negatives(self):
        with pytest.raises(ValueError):
            RoaringBitmap.from_sorted([-1, 0, 1])

    @given(
        st.lists(
            st.integers(min_value=0, max_value=5000),
            max_size=200,
            unique=True,
        ),
        st.integers(min_value=0, max_value=5000),
    )
    @settings(max_examples=30, deadline=None)
    def test_to_dense_bytes_matches_packbits(self, values, num_bits):
        bm = RoaringBitmap.from_sorted(sorted(values))
        dense = np.zeros(num_bits, dtype=np.uint8)
        keep = [v for v in values if v < num_bits]
        if keep:
            dense[keep] = 1
        expected = np.packbits(dense, bitorder="little").tobytes()
        assert bm.to_dense_bytes(num_bits) == expected


class TestHubMembership:
    def test_threshold_scales_with_graph_size(self):
        assert hub_degree_threshold(100) == ROARING_HUB_MIN_DEGREE
        assert hub_degree_threshold(1 << 20) == (1 << 20) >> 6

    def test_no_hubs_below_threshold(self):
        g = erdos_renyi(50, 0.1, seed=3)  # max degree far below 128
        view = AcceleratedGraphView(g)
        assert view.hub_index() is None
        assert view.hub_index() is None  # the miss is cached too

    def test_index_structure_and_lookup(self):
        g = barabasi_albert(300, 6, seed=5)
        view = AcceleratedGraphView(g)
        hub = view.hub_index(min_degree=12)
        assert hub is not None
        assert isinstance(hub, HubMembershipIndex)
        degrees = view.degrees()
        assert all(degrees[h] >= 12 for h in hub.hubs)
        for h in np.asarray(hub.hubs)[:10]:
            row = hub.row_of[h]
            assert row >= 0
            members = np.flatnonzero(
                np.unpackbits(hub.bits[row], bitorder="little")
            )
            assert members.tolist() == list(g.neighbors(int(h)))
        assert hub.memory_bytes() > 0

    @given(seeds)
    @settings(max_examples=10, deadline=None)
    def test_member_routes_agree_with_searchsorted(self, seed):
        g = power_law(120 + seed, gamma=1.7, seed=seed)
        view = AcceleratedGraphView(g)
        # Force hub routing before the engine binds the (lazily cached)
        # index: the engine's own init would cache the default-threshold
        # miss first.
        hubs = view.hub_index(min_degree=4)
        assert hubs is not None
        engine = FrontierBatchedEngine(view)
        assert engine.hubs is hubs
        rng = np.random.default_rng(seed)
        n = g.num_vertices
        owners = rng.integers(0, n, 400)
        values = rng.integers(0, n, 400)
        got = engine._member(owners, values)
        want = engine._member_sorted(owners, values)
        assert np.array_equal(got, want)

    def test_engine_counts_unchanged_when_hubs_engage(self, monkeypatch):
        import repro.core.accel as accel_mod

        g = power_law(300, gamma=1.6, seed=9)
        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        expected = count(g, p, engine="reference")
        monkeypatch.setattr(accel_mod, "ROARING_HUB_MIN_DEGREE", 4)
        h, _ = g.degree_ordered()
        view = AcceleratedGraphView(h)
        assert view.hub_index() is not None  # hubs really engage
        engine = FrontierBatchedEngine(view)
        assert engine.hubs is not None
        got = count(g, p, engine="accel-batch")
        assert got == expected
