"""Tests for the pattern-matching application wrappers."""

from repro.core import count
from repro.mining import (
    count_pattern,
    count_unique_subgraphs,
    enumerate_matches,
    match_and_write,
)
from repro.pattern import generate_clique, generate_star, pattern_p1


class TestWrappers:
    def test_count_pattern_delegates(self, random_graph):
        p = pattern_p1()
        assert count_pattern(random_graph, p) == count(random_graph, p)

    def test_enumerate_matches_complete(self, random_graph):
        p = generate_clique(3)
        matches = enumerate_matches(random_graph, p)
        assert len(matches) == count(random_graph, p)
        assert len({m.mapping for m in matches}) == len(matches)

    def test_enumerate_limit(self, denser_graph):
        p = generate_clique(3)
        capped = enumerate_matches(denser_graph, p, limit=3)
        assert 3 <= len(capped) <= 6  # stop is cooperative, slight overshoot ok

    def test_match_and_write_streams_all(self, random_graph):
        out = []
        n = match_and_write(random_graph, generate_star(3), out.append)
        assert n == len(out) == count(random_graph, generate_star(3))

    def test_unique_subgraphs_at_most_matches(self, random_graph):
        p = generate_star(3)
        unique = count_unique_subgraphs(random_graph, p)
        total = count(random_graph, p)
        assert unique <= total
        assert unique > 0 or total == 0

    def test_unique_subgraphs_cliques_equal_matches(self, denser_graph):
        # For cliques, canonical matches are already one per vertex set.
        p = generate_clique(3)
        assert count_unique_subgraphs(denser_graph, p) == count(denser_graph, p)
