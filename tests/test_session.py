"""Session API parity, cache behaviour, and legacy-shim stability.

The session redesign must be *observationally invisible* through the
legacy surface: ``MiningSession`` verbs return exactly what the
module-level :mod:`repro.core.api` functions return — counts, callback
sequences, batch row multisets, aggregates — across the full
pattern-feature matrix (labels, vertex-induced matching, anti-edges,
anti-vertices, symmetry-breaking ablation).  On top of parity, the
session must actually *reuse* state (plan cache, degree ordering, CSR
view), and the legacy functions must keep their exact signatures, since
they are the documented deprecation shims.
"""

from __future__ import annotations

import inspect

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import (
    ExecOptions,
    MiningSession,
    as_session,
    count,
    count_many,
    exists,
    match,
    match_batches,
)
from repro.core import api as api_module
from repro.core.callbacks import ExplorationControl
from repro.errors import MatchingError
from repro.graph import erdos_renyi, from_edges, with_random_labels
from repro.mining.cliques import maximal_clique_pattern
from repro.pattern import (
    Pattern,
    generate_all_vertex_induced,
    generate_chain,
    generate_clique,
    generate_star,
)


def _labeled(p: Pattern, labels: dict[int, int]) -> Pattern:
    for u, lab in labels.items():
        p.set_label(u, lab)
    return p


def _feature_matrix():
    """(name, pattern factory, match kwargs) across every feature class."""

    def anti_square():
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        p.add_anti_edge(0, 2)
        p.add_anti_edge(1, 3)
        return p

    def anti_vertex_star():
        p = generate_star(3)
        p.add_anti_vertex([0, 1])
        return p

    return [
        ("clique3", lambda: generate_clique(3), {}),
        ("chain4-single-core", lambda: generate_chain(4), {}),
        ("tailed-triangle", lambda: Pattern.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)]), {}),
        ("vertex-induced-star", lambda: generate_star(3),
         {"edge_induced": False}),
        ("anti-edge-square", anti_square, {}),
        ("anti-vertex-star", anti_vertex_star, {}),
        ("maximal-clique", lambda: maximal_clique_pattern(3), {}),
        ("labeled-chain", lambda: _labeled(generate_chain(3), {0: 0, 2: 1}),
         {}),
        ("no-symmetry-clique", lambda: generate_clique(3),
         {"symmetry_breaking": False}),
    ]


FEATURE_MATRIX = _feature_matrix()
FEATURE_IDS = [name for name, _, _ in FEATURE_MATRIX]


def _graph_for(name, seed):
    if name.startswith("labeled"):
        return with_random_labels(erdos_renyi(32, 0.25, seed=seed), 3, seed=seed)
    return erdos_renyi(32, 0.25, seed=seed)


# ----------------------------------------------------------------------
# Parity: session verbs == legacy module functions
# ----------------------------------------------------------------------


class TestSessionParity:
    @pytest.mark.parametrize(
        "name,pattern_fn,kwargs", FEATURE_MATRIX, ids=FEATURE_IDS
    )
    def test_count_parity(self, name, pattern_fn, kwargs):
        g = _graph_for(name, seed=5)
        p = pattern_fn()
        session = MiningSession(g)
        assert session.count(p, **kwargs) == count(g, p, **kwargs)

    @pytest.mark.parametrize(
        "name,pattern_fn,kwargs", FEATURE_MATRIX, ids=FEATURE_IDS
    )
    def test_callback_sequence_parity(self, name, pattern_fn, kwargs):
        g = _graph_for(name, seed=7)
        p = pattern_fn()
        via_session: list[tuple[int, ...]] = []
        via_api: list[tuple[int, ...]] = []
        n1 = MiningSession(g).match(
            p, lambda m: via_session.append(m.mapping), **kwargs
        )
        n2 = match(g, p, callback=lambda m: via_api.append(m.mapping), **kwargs)
        assert n1 == n2
        assert via_session == via_api  # order, not just multiset

    @pytest.mark.parametrize(
        "name,pattern_fn,kwargs", FEATURE_MATRIX, ids=FEATURE_IDS
    )
    def test_batch_rows_parity(self, name, pattern_fn, kwargs):
        g = _graph_for(name, seed=9)
        p = pattern_fn()
        rows_session: list[tuple[int, ...]] = []
        rows_api: list[tuple[int, ...]] = []
        n1 = MiningSession(g).match_batches(
            p,
            lambda arr: rows_session.extend(tuple(r) for r in arr.tolist()),
            **kwargs,
        )
        n2 = match_batches(
            g,
            p,
            lambda arr: rows_api.extend(tuple(r) for r in arr.tolist()),
            **kwargs,
        )
        assert n1 == n2
        assert sorted(rows_session) == sorted(rows_api)

    def test_count_many_parity(self):
        g = erdos_renyi(40, 0.2, seed=3)
        patterns = generate_all_vertex_induced(3)
        session = MiningSession(g)
        got = session.count_many(patterns, edge_induced=False)
        assert got == count_many(g, patterns, edge_induced=False)

    def test_exists_parity(self):
        triangle_free = from_edges([(0, 1), (1, 2), (2, 3)])
        with_triangle = from_edges([(0, 1), (1, 2), (0, 2)])
        for g in (triangle_free, with_triangle):
            assert MiningSession(g).exists(generate_clique(3)) == exists(
                g, generate_clique(3)
            )

    def test_aggregate_matches_counts(self):
        g = with_random_labels(erdos_renyi(40, 0.2, seed=11), 2, seed=4)
        session = MiningSession(g)
        patterns = [generate_clique(3), generate_chain(3)]
        agg = session.aggregate(
            patterns, lambda m: (m.pattern.signature(), 1)
        )
        for p in patterns:
            assert agg[p.signature()] == count(g, p)

    def test_aggregate_custom_reduce(self):
        g = erdos_renyi(30, 0.25, seed=13)
        session = MiningSession(g)
        # max over the smallest matched vertex id — exercises a
        # non-additive combine through the aggregator thread.
        agg = session.aggregate(
            generate_clique(3),
            lambda m: ("min-vertex", min(m.vertices())),
            reduce=max,
        )
        expected: list[int] = []
        match(g, generate_clique(3), callback=lambda m: expected.append(
            min(m.vertices())
        ))
        assert agg["min-vertex"] == max(expected)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_fuzz_count_parity(self, seed):
        g = erdos_renyi(26, 0.25, seed=seed)
        gl = with_random_labels(erdos_renyi(26, 0.25, seed=seed), 3, seed=seed)
        for name, pattern_fn, kwargs in FEATURE_MATRIX:
            graph = gl if name.startswith("labeled") else g
            p = pattern_fn()
            assert MiningSession(graph).count(p, **kwargs) == count(
                graph, p, **kwargs
            ), name


# ----------------------------------------------------------------------
# ExecOptions resolution
# ----------------------------------------------------------------------


class TestExecOptions:
    def test_merged_overrides_fields(self):
        opts = ExecOptions().merged({"engine": "reference", "label_index": False})
        assert opts.engine == "reference"
        assert not opts.label_index
        assert opts.edge_induced  # untouched defaults survive

    def test_merged_rejects_unknown_option(self):
        with pytest.raises(TypeError, match="frontier_chunks"):
            ExecOptions().merged({"frontier_chunks": 1})

    def test_session_defaults_flow_into_runs(self):
        g = erdos_renyi(30, 0.25, seed=2)
        forced = MiningSession(g, engine="reference")
        assert forced.defaults.engine == "reference"
        assert forced.count(generate_clique(3)) == count(g, generate_clique(3))

    def test_per_call_override_beats_session_default(self):
        g = erdos_renyi(30, 0.25, seed=2)
        session = MiningSession(g, edge_induced=False)
        wedge = generate_chain(3)
        assert session.count(wedge) == count(g, wedge, edge_induced=False)
        assert session.count(wedge, edge_induced=True) == count(g, wedge)

    def test_per_call_only_options_rejected_as_defaults(self):
        g = erdos_renyi(10, 0.3, seed=1)
        from repro.core import generate_plan

        with pytest.raises(ValueError):
            MiningSession(g, plan=generate_plan(generate_clique(3)))
        with pytest.raises(ValueError):
            MiningSession(g, start_vertices=[0, 1])

    def test_defaults_and_options_are_exclusive(self):
        g = erdos_renyi(10, 0.3, seed=1)
        with pytest.raises(TypeError):
            MiningSession(g, ExecOptions(), engine="reference")

    def test_unknown_engine_still_value_error(self):
        g = erdos_renyi(10, 0.3, seed=1)
        with pytest.raises(ValueError):
            MiningSession(g).count(generate_clique(3), engine="warp-drive")

    # Distinct-from-default sample values per overridable field, so a
    # field-by-field check can tell "overridden" from "inherited".
    _OVERRIDE_SAMPLES = {
        "edge_induced": st.just(False),
        "symmetry_breaking": st.just(False),
        "engine": st.sampled_from(["reference", "accel", "accel-batch"]),
        "frontier_chunk": st.integers(min_value=1, max_value=64),
        "label_index": st.just(False),
        "flush_size": st.integers(min_value=1, max_value=512),
    }

    @given(
        overrides=st.fixed_dictionaries(
            {}, optional=_OVERRIDE_SAMPLES
        ),
        base_engine=st.sampled_from(["auto", "reference"]),
        base_flush=st.integers(min_value=1, max_value=9999),
    )
    @settings(max_examples=60)
    def test_merged_resolves_field_by_field(
        self, overrides, base_engine, base_flush
    ):
        """Random override subsets: overridden fields take the override,
        every other field keeps the session default, and the defaults
        object itself is never mutated."""
        import dataclasses

        defaults = ExecOptions(engine=base_engine, flush_size=base_flush)
        snapshot = dataclasses.asdict(defaults)
        merged = defaults.merged(overrides)
        for field in dataclasses.fields(ExecOptions):
            expected = overrides.get(field.name, getattr(defaults, field.name))
            assert getattr(merged, field.name) == expected, field.name
        assert dataclasses.asdict(defaults) == snapshot
        if not overrides:
            assert merged is defaults  # no-op merges don't copy

    @given(
        overrides=st.fixed_dictionaries({}, optional=_OVERRIDE_SAMPLES),
        bogus=st.sampled_from(
            ["frontier_chunks", "Engine", "chunk", "threads", ""]
        ),
    )
    @settings(max_examples=30)
    def test_merged_unknown_names_raise(self, overrides, bogus):
        with pytest.raises(TypeError, match="unknown execution option"):
            ExecOptions().merged({**overrides, bogus: 1})

    def test_merged_engine_none_inherits(self):
        defaults = ExecOptions(engine="reference")
        assert defaults.merged({"engine": None}).engine == "reference"
        assert defaults.merged({"engine": None, "flush_size": 7}).flush_size == 7


# ----------------------------------------------------------------------
# Cache behaviour: the whole point of a session
# ----------------------------------------------------------------------


class TestSessionCaches:
    def test_plan_cache_hits_on_repeat_queries(self):
        g = erdos_renyi(30, 0.25, seed=4)
        session = MiningSession(g)
        p = generate_clique(3)
        session.count(p)
        assert session.cache_info()["plan_misses"] == 1
        session.count(p)
        session.match(p, lambda m: None)
        info = session.cache_info()
        assert info["plan_misses"] == 1
        assert info["plan_hits"] == 2
        # Same flags -> the very same plan object.
        assert session.plan_for(p) is session.plan_for(p)

    def test_plan_cache_distinguishes_flags(self):
        g = erdos_renyi(30, 0.25, seed=4)
        session = MiningSession(g)
        p = generate_star(3)
        session.count(p)
        session.count(p, edge_induced=False)
        session.count(p, symmetry_breaking=False)
        assert session.cache_info()["plans"] == 3

    def test_ordering_and_view_are_shared_objects(self):
        g = erdos_renyi(30, 0.25, seed=6)
        session = MiningSession(g)
        session.count(generate_clique(3))
        assert session.ordered is g.degree_ordered()[0]
        assert session.view is session.view

    def test_legacy_api_shares_the_graph_session(self):
        g = erdos_renyi(30, 0.25, seed=8)
        p = generate_clique(3)
        count(g, p)
        count(g, p)
        shared = MiningSession.for_graph(g)
        assert shared.cache_info()["plan_hits"] >= 1
        assert as_session(g) is shared

    def test_label_start_lists_cached(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=9), 3, seed=2)
        session = MiningSession(g)
        p = _labeled(generate_chain(3), {0: 0, 2: 1})
        session.count(p)
        session.count(p)
        assert session.cache_info()["start_lists"] == 1

    def test_pattern_mutation_misses_instead_of_staleness(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=10), 2, seed=3)
        session = MiningSession(g)
        p = generate_chain(3)
        session.count(p)
        p.set_label(0, 1)  # mutate after caching
        labeled = session.count(p)
        assert labeled == count(g, p, engine="reference")
        assert session.cache_info()["plan_misses"] == 2

    def test_as_session_rejects_other_types(self):
        with pytest.raises(TypeError):
            as_session([[0, 1]])


# ----------------------------------------------------------------------
# Early termination through the batched engine (session dispatch)
# ----------------------------------------------------------------------


class TestSessionEarlyTermination:
    def test_forced_batch_with_control_stops_at_limit(self):
        g = erdos_renyi(40, 0.3, seed=12)
        session = MiningSession(g)
        control = ExplorationControl()
        seen: list[tuple[int, ...]] = []

        def capped(m):
            seen.append(m.mapping)
            if len(seen) >= 4:
                control.stop()

        total = session.match(
            generate_clique(3), capped, control=control, engine="accel-batch"
        )
        assert control.stopped
        assert len(seen) == 4
        # The batched engine's count equals the callbacks actually fired.
        assert total == 4

    def test_forced_per_match_engine_honors_control(self):
        # Control-bearing calls now qualify for the vectorized engines:
        # the per-match engine polls the control per start vertex and per
        # core match, so a stop from the callback lands promptly.
        g = erdos_renyi(30, 0.3, seed=12)
        session = MiningSession(g)
        expected = session.count(generate_clique(3), engine="reference")
        assert expected > 1
        seen: list = []
        session.match(
            generate_clique(3),
            seen.append,
            control=ExplorationControl(),
            engine="accel",
        )
        assert len(seen) == expected  # un-stopped control changes nothing
        control = ExplorationControl()
        stopped: list = []

        def stop_immediately(m):
            stopped.append(m)
            control.stop()

        session.match(
            generate_clique(3),
            stop_immediately,
            control=control,
            engine="accel",
        )
        assert 1 <= len(stopped) < expected

    def test_multi_core_control_stops_at_limit(self):
        # Vertex-induced 4-chains have 3 ordered cores, the order-merged
        # emission path: with a control attached, start slices shrink to
        # single vertices so the stopping callback isn't deferred behind
        # a whole chunk of buffered matches.
        g = erdos_renyi(40, 0.3, seed=18)
        session = MiningSession(g)
        control = ExplorationControl()
        seen: list[tuple[int, ...]] = []

        def capped(m):
            seen.append(m.mapping)
            if len(seen) >= 3:
                control.stop()

        total = session.match(
            generate_chain(4),
            capped,
            edge_induced=False,
            control=control,
            engine="accel-batch",
        )
        assert control.stopped
        assert total == len(seen) == 3

    def test_exists_honors_external_cancel(self):
        g = erdos_renyi(40, 0.3, seed=19)  # triangles definitely exist
        cancelled = ExplorationControl()
        cancelled.stop()
        assert not MiningSession(g).exists(
            generate_clique(3), control=cancelled
        )
        # The session-default control is an external cancel token too.
        session = MiningSession(g, control=cancelled)
        assert not session.exists(generate_clique(3))
        # A successful probe must not fire the caller's shared token.
        live = ExplorationControl()
        assert MiningSession(g).exists(generate_clique(3), control=live)
        assert not live.stopped

    def test_exists_matches_reference_and_stops(self):
        g = erdos_renyi(40, 0.3, seed=14)  # above the batched crossover
        session = MiningSession(g)
        assert session.exists(generate_clique(3)) == exists(
            g, generate_clique(3), engine="reference"
        )
        assert not session.exists(generate_clique(8))

    def test_aggregate_threshold_stop(self):
        g = erdos_renyi(40, 0.3, seed=15)
        session = MiningSession(g)
        control = ExplorationControl()

        def stop_at_ten(agg):
            if (agg.get("triangles") or 0) >= 10:
                control.stop()

        agg = session.aggregate(
            generate_clique(3),
            lambda m: ("triangles", 1),
            on_update=stop_at_ten,
            interval=0.0005,
            control=control,
        )
        full = count(g, generate_clique(3))
        assert 0 < agg["triangles"] <= full


# ----------------------------------------------------------------------
# Deprecation-shim stability: the legacy surface must not drift
# ----------------------------------------------------------------------

LEGACY_SIGNATURES = {
    "match": (
        "graph", "pattern", "callback", "edge_induced", "symmetry_breaking",
        "control", "stats", "timer", "plan", "start_vertices", "label_index",
        "engine", "frontier_chunk",
    ),
    "count": (
        "graph", "pattern", "edge_induced", "symmetry_breaking", "stats",
        "timer", "plan", "engine", "frontier_chunk",
    ),
    "count_many": (
        "graph", "patterns", "edge_induced", "symmetry_breaking", "engine",
    ),
    "exists": ("graph", "pattern", "edge_induced", "engine"),
    "match_batches": (
        "graph", "pattern", "on_batch", "edge_induced", "symmetry_breaking",
        "plan", "label_index", "engine", "frontier_chunk", "flush_size",
    ),
}


class TestLegacyShims:
    @pytest.mark.parametrize("name", sorted(LEGACY_SIGNATURES))
    def test_signatures_unchanged(self, name):
        fn = getattr(api_module, name)
        params = tuple(inspect.signature(fn).parameters)
        assert params == LEGACY_SIGNATURES[name]

    def test_legacy_defaults_unchanged(self):
        sig = inspect.signature(api_module.match)
        assert sig.parameters["edge_induced"].default is True
        assert sig.parameters["symmetry_breaking"].default is True
        assert sig.parameters["engine"].default == "auto"
        assert sig.parameters["label_index"].default is True
        assert inspect.signature(api_module.match_batches).parameters[
            "flush_size"
        ].default == 4096

    def test_dispatch_helpers_still_importable(self):
        # Documented entry points that rode on the api module.
        from repro.core.api import (  # noqa: F401
            ACCEL_BATCH_MIN_AVG_DEGREE,
            ACCEL_MIN_AVG_DEGREE,
            accel_preferred,
            batch_preferred,
        )

        assert ACCEL_MIN_AVG_DEGREE == 128.0
        assert ACCEL_BATCH_MIN_AVG_DEGREE == 2.0

    def test_precomputed_plan_still_honored(self):
        from repro.core import generate_plan

        g = erdos_renyi(30, 0.25, seed=16)
        p = generate_clique(3)
        plan = generate_plan(p)
        assert count(g, p, plan=plan) == count(g, p)
