"""Engine behavior: callbacks, Match objects, early termination, stats."""

from repro.core import (
    EngineStats,
    ExplorationControl,
    Match,
    count,
    generate_plan,
    match,
)
from repro.graph import erdos_renyi, from_edges
from repro.pattern import Pattern, generate_clique, generate_star, pattern_p1


class TestMatchObjects:
    def test_each_match_is_valid(self):
        g = erdos_renyi(25, 0.25, seed=1)
        p = pattern_p1()

        def verify(m: Match) -> None:
            for u, v in p.edges():
                assert g.has_edge(m[u], m[v])
            assert len(set(m.vertices())) == p.num_vertices

        n = match(g, p, callback=verify)
        assert n == count(g, p)

    def test_matches_distinct(self):
        g = erdos_renyi(25, 0.25, seed=2)
        seen = set()
        match(g, generate_clique(3), callback=lambda m: seen.add(m.mapping))
        assert len(seen) == count(g, generate_clique(3))

    def test_anti_vertex_mapping_is_minus_one(self):
        from repro.pattern import pattern_p7

        g = erdos_renyi(20, 0.3, seed=3)
        collected = []
        match(g, pattern_p7(), callback=lambda m: collected.append(m))
        for m in collected:
            assert m.mapping[3] == -1
            assert 3 not in m.as_dict()
            assert len(m.vertices()) == 3

    def test_match_ids_in_original_numbering(self):
        # A graph whose degree ordering shuffles ids: callbacks must see
        # original ids (valid edges in the *original* graph).
        g = from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])

        def verify(m: Match) -> None:
            assert g.has_edge(m[0], m[1])

        match(g, Pattern.from_edges([(0, 1)]), callback=verify)

    def test_match_equality_and_hash(self):
        p = generate_clique(3)
        a = Match(p, (1, 2, 3))
        b = Match(p, (1, 2, 3))
        assert a == b
        assert hash(a) == hash(b)
        assert a != Match(p, (1, 2, 4))


class TestEarlyTermination:
    def test_stop_after_first(self):
        g = erdos_renyi(30, 0.3, seed=4)
        control = ExplorationControl()
        found = []

        def first(m: Match) -> None:
            found.append(m)
            control.stop()

        match(g, generate_clique(3), callback=first, control=control)
        assert len(found) <= 4  # at most a few per core match batch
        assert control.stopped

    def test_control_reset(self):
        c = ExplorationControl()
        c.stop()
        c.reset()
        assert not c.stopped

    def test_no_stop_finds_all(self):
        g = erdos_renyi(30, 0.3, seed=4)
        control = ExplorationControl()
        n = match(g, generate_clique(3), control=control)
        assert n == count(g, generate_clique(3))


class TestEngineStats:
    def test_zero_checks_always(self):
        g = erdos_renyi(30, 0.2, seed=5)
        stats = EngineStats()
        count(g, pattern_p1(), stats=stats)
        assert stats.canonicality_checks == 0
        assert stats.isomorphism_checks == 0

    def test_complete_matches_equals_count(self):
        g = erdos_renyi(30, 0.2, seed=5)
        stats = EngineStats()
        n = count(g, generate_star(4), stats=stats)
        assert stats.complete_matches == n

    def test_partial_at_least_complete(self):
        g = erdos_renyi(30, 0.2, seed=6)
        stats = EngineStats()
        count(g, pattern_p1(), stats=stats)
        assert stats.partial_matches >= stats.complete_matches

    def test_tasks_counted(self):
        g = erdos_renyi(10, 0.2, seed=7)
        stats = EngineStats()
        count(g, generate_clique(3), stats=stats)
        assert stats.tasks == 10

    def test_merge(self):
        a, b = EngineStats(), EngineStats()
        a.tasks, b.tasks = 2, 3
        a.complete_matches, b.complete_matches = 5, 7
        a.merge(b)
        assert a.tasks == 5
        assert a.complete_matches == 12

    def test_as_dict(self):
        d = EngineStats().as_dict()
        assert d["tasks"] == 0
        assert set(d) >= {"partial_matches", "complete_matches"}


class TestCountFastPath:
    def test_count_equals_enumeration(self):
        g = erdos_renyi(30, 0.25, seed=8)
        for p in [generate_clique(3), generate_star(4), pattern_p1()]:
            enumerated = []
            match(g, p, callback=lambda m: enumerated.append(m))
            assert count(g, p) == len(enumerated)
