"""Tests for PRG-U (Peregrine without symmetry breaking)."""

from repro.baselines import (
    dedup_factor,
    prgu_count,
    prgu_count_raw,
    prgu_fsm,
    prgu_motif_counts,
)
from repro.core import count
from repro.graph import mico_like
from repro.mining import fsm, motif_counts
from repro.pattern import (
    canonical_code,
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
)


class TestDedupFactor:
    def test_known_factors(self):
        assert dedup_factor(generate_clique(3)) == 6
        assert dedup_factor(generate_star(4)) == 6
        assert dedup_factor(generate_chain(4)) == 2
        assert dedup_factor(generate_cycle(4)) == 8

    def test_vertex_induced_uses_closure(self):
        assert dedup_factor(generate_chain(3), edge_induced=False) == 2


class TestCounts:
    def test_raw_is_factor_times_canonical(self, random_graph):
        for p in [generate_clique(3), generate_star(4), generate_cycle(4)]:
            raw = prgu_count_raw(random_graph, p)
            assert raw == count(random_graph, p) * dedup_factor(p)

    def test_corrected_equals_canonical(self, random_graph):
        for p in [generate_clique(3), generate_star(4)]:
            assert prgu_count(random_graph, p) == count(random_graph, p)

    def test_motifs_match(self, random_graph):
        assert prgu_motif_counts(random_graph, 3) == motif_counts(random_graph, 3)

    def test_fsm_results_match_with_more_writes(self):
        g = mico_like(0.15)
        aware = fsm(g, 2, 3)
        unaware = prgu_fsm(g, 2, 3)
        assert {canonical_code(p): s for p, s in aware.frequent.items()} == {
            canonical_code(p): s for p, s in unaware.frequent.items()
        }
        assert unaware.domain_writes >= aware.domain_writes
