"""Tests for matching-order computation (ordered cores)."""

import math

from repro.core import break_symmetries, compute_matching_orders, minimum_connected_vertex_cover
from repro.pattern import Pattern, generate_chain, generate_clique, generate_cycle


class TestSequences:
    def test_total_order_single_sequence(self):
        p = generate_clique(3)
        core = minimum_connected_vertex_cover(p)
        po = break_symmetries(p)
        orders = compute_matching_orders(p, core, po)
        # Clique core is totally ordered: exactly one linear extension.
        assert len(orders) == 1
        assert len(orders[0].sequences) == 1

    def test_all_sequences_respect_partial_order(self):
        p = generate_cycle(4)
        core = minimum_connected_vertex_cover(p)
        po = break_symmetries(p)
        for oc in compute_matching_orders(p, core, po):
            for seq in oc.sequences:
                pos = {u: i for i, u in enumerate(seq)}
                for u, v in po:
                    if u in pos and v in pos:
                        assert pos[u] < pos[v]

    def test_no_symmetry_breaking_covers_all_permutations(self):
        p = generate_clique(3)
        core = minimum_connected_vertex_cover(p)
        orders = compute_matching_orders(p, core, [])
        total = sum(len(oc.sequences) for oc in orders)
        assert total == math.factorial(len(core))

    def test_duplicate_structures_grouped(self):
        # Without partial orders a symmetric core collapses into one
        # ordered structure holding all sequences.
        p = generate_clique(4)
        core = minimum_connected_vertex_cover(p)  # triangle core
        orders = compute_matching_orders(p, core, [])
        assert len(orders) == 1
        assert len(orders[0].sequences) == 6


class TestOrderedCoreStructure:
    def test_positions_edges(self):
        p = generate_chain(4)  # core {1, 2}
        core = minimum_connected_vertex_cover(p)
        po = break_symmetries(p)
        for oc in compute_matching_orders(p, core, po):
            assert oc.size == 2
            assert oc.edges == ((0, 1),)

    def test_neighbor_helpers(self):
        p = generate_clique(4)
        core = minimum_connected_vertex_cover(p)
        po = break_symmetries(p)
        oc = compute_matching_orders(p, core, po)[0]
        assert oc.later_neighbors(0) == [1, 2]
        assert oc.earlier_neighbors(2) == [0, 1]

    def test_labels_in_key(self):
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 7)
        p.set_label(1, 8)
        core = minimum_connected_vertex_cover(p)
        orders = compute_matching_orders(p, core, [])
        # single-vertex core: label of the core vertex recorded
        assert all(len(oc.labels) == oc.size for oc in orders)

    def test_anti_edges_projected_to_core(self):
        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        core = minimum_connected_vertex_cover(p)
        po = break_symmetries(p)
        orders = compute_matching_orders(p, core, po)
        if len(core) == 2 and set(core) >= {0, 2} - set():
            pass  # structure depends on chosen cover; just check validity
        for oc in orders:
            for a, b in oc.anti_edges:
                assert 0 <= a < b < oc.size
