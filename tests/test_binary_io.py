"""Tests for the binary (.npz) graph format."""

from __future__ import annotations

import numpy as np
import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    from_edges,
    load_npz,
    mico_like,
    patents_like,
    save_npz,
)
from repro.graph.binary_io import FORMAT_VERSION


class TestRoundtrip:
    def test_unlabeled(self, tmp_path):
        g = patents_like(0.05)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.num_vertices == g.num_vertices
        assert h.num_edges == g.num_edges
        # load_npz now returns an array-backed graph whose accessors hand
        # out numpy slices; compare element-wise, not by list identity.
        for v in g.vertices():
            assert list(h.neighbors(v)) == list(g.neighbors(v))
        assert h == g
        assert h.backing == "array"
        assert h.labels() is None

    def test_labeled(self, tmp_path):
        g = mico_like(0.05)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert list(h.labels()) == list(g.labels())
        assert h == g

    def test_isolated_vertices_preserved(self, tmp_path):
        g = from_edges([(0, 1)], num_vertices=5)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.num_vertices == 5
        assert h.degree(4) == 0

    def test_empty_graph(self, tmp_path):
        g = from_edges([], num_vertices=0)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        assert h.num_vertices == 0 and h.num_edges == 0

    def test_name_from_filename(self, tmp_path):
        g = from_edges([(0, 1)])
        path = tmp_path / "citations.npz"
        save_npz(g, path)
        assert load_npz(path).name == "citations"
        assert load_npz(path, name="override").name == "override"

    def test_mining_results_survive_roundtrip(self, tmp_path):
        from repro.core import count
        from repro.pattern import generate_clique

        g = mico_like(0.05)
        path = tmp_path / "g.npz"
        save_npz(g, path)
        h = load_npz(path)
        p = generate_clique(3)
        assert count(h, p) == count(g, p)


class TestFormatValidation:
    def test_rejects_wrong_version(self, tmp_path):
        path = tmp_path / "bad.npz"
        np.savez_compressed(
            path,
            version=np.array([FORMAT_VERSION + 1], dtype=np.int64),
            offsets=np.array([0], dtype=np.int64),
            neighbors=np.array([], dtype=np.int64),
        )
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_rejects_foreign_npz(self, tmp_path):
        path = tmp_path / "foreign.npz"
        np.savez_compressed(path, whatever=np.array([1]))
        with pytest.raises(GraphFormatError):
            load_npz(path)

    def test_compressed_smaller_than_text(self, tmp_path):
        from repro.graph import save_edge_list

        g = patents_like(0.3)
        npz_path = tmp_path / "g.npz"
        txt_path = tmp_path / "g.edges"
        save_npz(g, npz_path)
        save_edge_list(g, txt_path)
        assert npz_path.stat().st_size < txt_path.stat().st_size
