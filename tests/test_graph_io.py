"""Tests for edge-list / label file I/O."""

import pytest

from repro.errors import GraphFormatError
from repro.graph import (
    from_edges,
    load_edge_list,
    load_labeled,
    load_labels,
    save_edge_list,
    save_labels,
)


class TestEdgeListRoundTrip:
    def test_round_trip(self, tmp_path):
        g = from_edges([(0, 1), (1, 2), (2, 3), (0, 3)], name="rt")
        path = tmp_path / "g.edges"
        save_edge_list(g, path)
        loaded = load_edge_list(path, name="rt")
        assert loaded == g

    def test_comments_and_blanks_skipped(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("# comment\n\n% other\n// also\n0 1\n1 2\n")
        g = load_edge_list(path)
        assert g.num_edges == 2

    def test_extra_columns_tolerated(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0 1 1.5\n1 2 0.25\n")
        assert load_edge_list(path).num_edges == 2

    def test_malformed_line_raises(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("0\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_non_integer_raises(self, tmp_path):
        path = tmp_path / "g.edges"
        path.write_text("a b\n")
        with pytest.raises(GraphFormatError):
            load_edge_list(path)

    def test_default_name_is_basename(self, tmp_path):
        path = tmp_path / "mygraph.edges"
        path.write_text("0 1\n")
        assert load_edge_list(path).name == "mygraph.edges"


class TestLabels:
    def test_label_round_trip(self, tmp_path):
        g = from_edges([(0, 1), (1, 2)], labels=[3, 1, 4])
        epath, lpath = tmp_path / "g.edges", tmp_path / "g.labels"
        save_edge_list(g, epath)
        save_labels(g, lpath)
        loaded = load_labeled(epath, lpath)
        assert loaded == g

    def test_save_labels_of_unlabeled_raises(self, tmp_path):
        g = from_edges([(0, 1)])
        with pytest.raises(GraphFormatError):
            save_labels(g, tmp_path / "x")

    def test_missing_labels_default_zero(self, tmp_path):
        epath, lpath = tmp_path / "g.edges", tmp_path / "g.labels"
        epath.write_text("0 1\n1 2\n")
        lpath.write_text("0 9\n")
        g = load_labeled(epath, lpath)
        assert g.label(0) == 9
        assert g.label(1) == 0

    def test_malformed_label_line(self, tmp_path):
        lpath = tmp_path / "g.labels"
        lpath.write_text("0 1 2\n")
        with pytest.raises(GraphFormatError):
            load_labels(lpath)
