"""Property-based tests for the sorted-list set operations."""

from hypothesis import given, strategies as st

from repro.core import (
    bounded,
    contains,
    difference,
    intersect,
    intersect_count,
    intersect_many,
)

sorted_lists = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60
).map(lambda xs: sorted(set(xs)))


class TestIntersect:
    @given(sorted_lists, sorted_lists)
    def test_matches_set_semantics(self, a, b):
        assert intersect(a, b) == sorted(set(a) & set(b))

    @given(sorted_lists, sorted_lists)
    def test_commutative(self, a, b):
        assert intersect(a, b) == intersect(b, a)

    def test_empty(self):
        assert intersect([], [1, 2]) == []
        assert intersect([1, 2], []) == []

    @given(sorted_lists, sorted_lists)
    def test_count_matches_len(self, a, b):
        assert intersect_count(a, b) == len(intersect(a, b))


class TestIntersectMany:
    @given(st.lists(sorted_lists, max_size=4))
    def test_matches_set_semantics(self, lists):
        got = intersect_many(lists)
        if not lists:
            assert got == []
        else:
            expected = set(lists[0])
            for other in lists[1:]:
                expected &= set(other)
            assert got == sorted(expected)

    def test_single_list_copied_semantics(self):
        a = [1, 2, 3]
        assert intersect_many([a]) == a


class TestDifference:
    @given(sorted_lists, sorted_lists)
    def test_matches_set_semantics(self, a, b):
        assert difference(a, b) == sorted(set(a) - set(b))

    def test_empty_cases(self):
        assert difference([], [1]) == []
        assert difference([1, 2], []) == [1, 2]


class TestBounded:
    @given(
        sorted_lists,
        st.integers(min_value=-5, max_value=205),
        st.integers(min_value=-5, max_value=205),
    )
    def test_matches_filter_semantics(self, a, lo, hi):
        assert bounded(a, lo, hi) == [x for x in a if lo < x < hi]

    def test_exclusive_bounds(self):
        assert bounded([1, 2, 3, 4], 1, 4) == [2, 3]


class TestContains:
    @given(sorted_lists, st.integers(min_value=-5, max_value=205))
    def test_matches_in_operator(self, a, x):
        assert contains(a, x) == (x in set(a))
