"""Tests for exploration-plan generation (Figure 5)."""

import pytest

from repro.core import generate_plan
from repro.errors import PlanError
from repro.pattern import (
    Pattern,
    generate_chain,
    generate_clique,
    generate_star,
    pattern_p7,
    pattern_p8,
)


class TestPlanStructure:
    def test_clique_plan(self):
        plan = generate_plan(generate_clique(4))
        assert len(plan.core) == 3
        assert len(plan.noncore_steps) == 1
        assert plan.noncore_steps[0].neighbors == tuple(plan.core)

    def test_star_plan(self):
        plan = generate_plan(generate_star(4))
        assert list(plan.core) == [0]
        assert len(plan.noncore_steps) == 3

    def test_partial_orders_off(self):
        plan = generate_plan(generate_clique(3), symmetry_breaking=False)
        assert plan.partial_orders == ()

    def test_vertex_induced_closure_applied(self):
        plan = generate_plan(generate_chain(3), edge_induced=False)
        assert plan.matched_pattern.num_anti_edges == 1
        assert plan.pattern.num_anti_edges == 0  # original untouched

    def test_anti_vertex_checks_collected(self):
        plan = generate_plan(pattern_p7())
        assert len(plan.anti_vertex_checks) == 1
        check = plan.anti_vertex_checks[0]
        assert check.anti_vertex == 3
        assert check.neighbors == (0, 1, 2)

    def test_anti_vertex_not_in_core_or_steps(self):
        plan = generate_plan(pattern_p7())
        assert 3 not in plan.core
        assert all(s.vertex != 3 for s in plan.noncore_steps)

    def test_anti_edge_in_noncore_step(self):
        plan = generate_plan(pattern_p8())
        anti_steps = [s for s in plan.noncore_steps if s.anti_neighbors]
        core_anti = any(oc.anti_edges for oc in plan.ordered_cores)
        assert anti_steps or core_anti  # the anti-edge lands somewhere

    def test_noncore_neighbors_subset_of_core(self):
        for p in [generate_clique(5), generate_star(5), pattern_p8()]:
            plan = generate_plan(p)
            core = set(plan.core)
            for step in plan.noncore_steps:
                assert set(step.neighbors) <= core

    def test_bounds_reference_earlier_vertices(self):
        plan = generate_plan(generate_star(5))
        seen = set(plan.core)
        for step in plan.noncore_steps:
            assert set(step.lower_bounds) <= seen
            assert set(step.upper_bounds) <= seen
            seen.add(step.vertex)

    def test_describe_mentions_core(self):
        text = generate_plan(generate_clique(3)).describe()
        assert "core" in text
        assert "matching orders" in text


class TestPlanValidation:
    def test_empty_pattern(self):
        with pytest.raises(PlanError):
            generate_plan(Pattern())

    def test_disconnected_pattern(self):
        with pytest.raises(PlanError):
            generate_plan(Pattern(num_vertices=4, edges=[(0, 1), (2, 3)]))

    def test_single_vertex_pattern_plans(self):
        plan = generate_plan(Pattern(num_vertices=1))
        assert plan.core == (0,)
        assert plan.ordered_cores[0].size == 1
