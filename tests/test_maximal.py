"""Tests for clique-problem variations (maximal / pseudo / frequent cliques).

The central cross-check: the anti-vertex route to maximal cliques must
agree with Bron–Kerbosch and with networkx's ``find_cliques`` on every
graph we throw at it.
"""

from itertools import combinations

import networkx as nx
import pytest

from repro.graph import complete_graph, erdos_renyi, from_edges
from repro.mining.maximal import (
    bron_kerbosch,
    frequent_clique_sizes,
    maximal_clique_census,
    maximal_cliques_of_size,
    pseudo_clique_count,
    pseudo_cliques,
)


def nx_maximal_cliques(graph) -> set[tuple[int, ...]]:
    return {tuple(sorted(c)) for c in nx.find_cliques(graph.to_networkx())}


class TestBronKerbosch:
    def test_matches_networkx(self, denser_graph):
        ours = set(bron_kerbosch(denser_graph))
        assert ours == nx_maximal_cliques(denser_graph)

    def test_complete_graph_single_maximal(self):
        g = complete_graph(6)
        assert list(bron_kerbosch(g)) == [tuple(range(6))]

    def test_empty_edges_all_singletons(self):
        g = from_edges([], num_vertices=4)
        assert set(bron_kerbosch(g)) == {(0,), (1,), (2,), (3,)}

    def test_two_triangles_sharing_vertex(self):
        g = from_edges([(0, 1), (1, 2), (0, 2), (2, 3), (3, 4), (2, 4)])
        assert set(bron_kerbosch(g)) == {(0, 1, 2), (2, 3, 4)}


class TestMaximalCliquesOfSize:
    def test_agrees_with_bron_kerbosch(self, denser_graph):
        by_size: dict[int, set] = {}
        for c in bron_kerbosch(denser_graph):
            by_size.setdefault(len(c), set()).add(c)
        for k in range(2, 6):
            expected = by_size.get(k, set())
            assert set(maximal_cliques_of_size(denser_graph, k)) == expected

    def test_triangle_inside_k4_not_maximal(self):
        g = complete_graph(4)
        assert maximal_cliques_of_size(g, 3) == []
        assert maximal_cliques_of_size(g, 4) == [(0, 1, 2, 3)]

    def test_isolated_vertices_are_maximal_1_cliques(self):
        g = from_edges([(0, 1)], num_vertices=4)
        assert maximal_cliques_of_size(g, 1) == [(2,), (3,)]

    def test_census_totals_match_enumeration(self, random_graph):
        census = maximal_clique_census(random_graph, 5)
        all_maximal = list(bron_kerbosch(random_graph))
        assert len(all_maximal) <= 5 or max(len(c) for c in all_maximal) <= 5
        for k, n in census.items():
            assert n == sum(1 for c in all_maximal if len(c) == k)


class TestPseudoCliques:
    def test_density_one_is_exact_cliques(self, denser_graph):
        from repro.mining import clique_count

        assert pseudo_clique_count(denser_graph, 4, 1.0) == clique_count(
            denser_graph, 4
        )

    def test_vs_brute_force(self, random_graph):
        G = random_graph.to_networkx()
        k, density = 4, 0.66
        expected = 0
        for nodes in combinations(G.nodes, k):
            sub = G.subgraph(nodes)
            if not nx.is_connected(sub):
                continue
            if sub.number_of_edges() / (k * (k - 1) / 2) >= density:
                expected += 1
        assert pseudo_clique_count(random_graph, k, density) == expected

    def test_listing_matches_count(self, random_graph):
        sets = pseudo_cliques(random_graph, 3, 0.66)
        assert len(sets) == pseudo_clique_count(random_graph, 3, 0.66)
        assert len(set(sets)) == len(sets)  # each vertex set reported once

    def test_invalid_density_rejected(self, random_graph):
        with pytest.raises(ValueError):
            pseudo_clique_count(random_graph, 3, 0.0)
        with pytest.raises(ValueError):
            pseudo_cliques(random_graph, 3, 1.5)


class TestFrequentCliques:
    def test_complete_graph_supports(self):
        g = complete_graph(6)
        out = frequent_clique_sizes(g, threshold=6, max_k=6)
        # every vertex participates in cliques of every size up to 6
        assert out == {k: 6 for k in range(2, 7)}

    def test_threshold_prunes(self):
        g = complete_graph(5)
        assert frequent_clique_sizes(g, threshold=6, max_k=5) == {}

    def test_anti_monotone(self, denser_graph):
        out = frequent_clique_sizes(denser_graph, threshold=1, max_k=5)
        supports = [out[k] for k in sorted(out)]
        assert supports == sorted(supports, reverse=True)

    def test_support_counts_participants(self, triangle_graph):
        # triangle 0-1-2 plus pendant 3: K_3 support = 3 vertices
        out = frequent_clique_sizes(triangle_graph, threshold=3, max_k=3)
        assert out[3] == 3
