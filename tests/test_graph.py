"""Unit tests for the DataGraph substrate."""

import pytest

from repro.errors import GraphError
from repro.graph import DataGraph, from_edges


def square() -> DataGraph:
    return from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])


class TestConstruction:
    def test_basic_counts(self):
        g = square()
        assert g.num_vertices == 4
        assert g.num_edges == 4

    def test_neighbors_sorted(self):
        g = from_edges([(2, 0), (0, 1), (0, 3)])
        assert g.neighbors(0) == [1, 2, 3]

    def test_isolated_vertices_via_num_vertices(self):
        g = from_edges([(0, 1)], num_vertices=5)
        assert g.num_vertices == 5
        assert g.degree(4) == 0

    def test_duplicate_edges_collapsed(self):
        g = from_edges([(0, 1), (1, 0), (0, 1)])
        assert g.num_edges == 1

    def test_self_loops_dropped_by_builder(self):
        g = from_edges([(0, 0), (0, 1)])
        assert g.num_edges == 1

    def test_validation_rejects_unsorted(self):
        with pytest.raises(GraphError):
            DataGraph([[1, 0], []], validate=True)

    def test_validation_rejects_asymmetric(self):
        with pytest.raises(GraphError):
            DataGraph([[1], []], validate=True)

    def test_validation_rejects_self_loop(self):
        with pytest.raises(GraphError):
            DataGraph([[0]], validate=True)

    def test_validation_rejects_out_of_range(self):
        with pytest.raises(GraphError):
            DataGraph([[5]], validate=True)

    def test_label_length_mismatch(self):
        with pytest.raises(GraphError):
            DataGraph([[1], [0]], labels=[1], validate=False)


class TestAccessors:
    def test_has_edge(self):
        g = square()
        assert g.has_edge(0, 1)
        assert g.has_edge(1, 0)
        assert not g.has_edge(0, 2)
        assert not g.has_edge(0, 0)

    def test_edges_iteration_no_duplicates(self):
        g = square()
        edges = list(g.edges())
        assert len(edges) == 4
        assert all(u < v for u, v in edges)

    def test_degrees(self):
        g = from_edges([(0, 1), (0, 2), (0, 3)])
        assert g.degree(0) == 3
        assert g.max_degree() == 3
        assert g.avg_degree() == pytest.approx(1.5)

    def test_empty_graph(self):
        g = DataGraph([])
        assert g.num_vertices == 0
        assert g.num_edges == 0
        assert g.max_degree() == 0
        assert g.avg_degree() == 0.0

    def test_labels(self):
        g = from_edges([(0, 1)], labels=[5, 7])
        assert g.is_labeled
        assert g.label(0) == 5
        assert g.num_labels() == 2
        assert g.label_histogram() == {5: 1, 7: 1}

    def test_unlabeled(self):
        g = square()
        assert not g.is_labeled
        assert g.label(0) is None
        assert g.num_labels() == 0


class TestRangeQueries:
    def test_neighbors_above(self):
        g = from_edges([(2, 0), (2, 1), (2, 3), (2, 4)])
        assert g.neighbors_above(2, 1) == [3, 4]
        assert g.neighbors_above(2, 4) == []

    def test_neighbors_below(self):
        g = from_edges([(2, 0), (2, 1), (2, 3), (2, 4)])
        assert g.neighbors_below(2, 3) == [0, 1]
        assert g.neighbors_below(2, 0) == []

    def test_neighbors_between_exclusive(self):
        g = from_edges([(5, 0), (5, 1), (5, 2), (5, 3), (5, 4)])
        assert g.neighbors_between(5, 0, 4) == [1, 2, 3]
        assert g.neighbors_between(5, -1, 5) == [0, 1, 2, 3, 4]


class TestDegreeOrdering:
    def test_order_is_by_degree(self):
        g = from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        ordered, old_of_new = g.degree_ordered()
        assert ordered.is_degree_ordered()
        degrees = [ordered.degree(v) for v in ordered.vertices()]
        assert degrees == sorted(degrees)

    def test_mapping_round_trip(self):
        g = from_edges([(0, 1), (0, 2), (0, 3), (1, 2)])
        ordered, old_of_new = g.degree_ordered()
        # Edge sets must agree modulo renaming.
        renamed_back = {
            tuple(sorted((old_of_new[u], old_of_new[v])))
            for u, v in ordered.edges()
        }
        assert renamed_back == set(g.edges())

    def test_labels_travel_with_vertices(self):
        g = from_edges([(0, 1), (0, 2)], labels=[9, 5, 7])
        ordered, old_of_new = g.degree_ordered()
        for new_id, old_id in enumerate(old_of_new):
            assert ordered.label(new_id) == g.label(old_id)

    def test_cached(self):
        g = from_edges([(0, 1), (1, 2)])
        a = g.degree_ordered()
        b = g.degree_ordered()
        assert a[0] is b[0]


class TestLabelIndex:
    def test_vertices_with_label(self):
        g = from_edges([(0, 1), (1, 2)], labels=[1, 2, 1])
        assert g.vertices_with_label(1) == [0, 2]
        assert g.vertices_with_label(2) == [1]
        assert g.vertices_with_label(9) == []

    def test_unlabeled_graph_returns_empty(self):
        g = square()
        assert g.vertices_with_label(0) == []


class TestMisc:
    def test_subgraph_edges(self):
        g = square()
        assert g.subgraph_edges([0, 1, 2]) == [(0, 1), (1, 2)]

    def test_to_networkx(self):
        g = from_edges([(0, 1), (1, 2)], labels=[1, 2, 3])
        G = g.to_networkx()
        assert G.number_of_nodes() == 3
        assert G.nodes[1]["label"] == 2

    def test_equality(self):
        assert square() == square()
        assert square() != from_edges([(0, 1)])

    def test_memory_bytes_positive(self):
        assert square().memory_bytes() > 0
