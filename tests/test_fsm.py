"""Tests for frequent subgraph mining (MNI support, label discovery)."""

from itertools import permutations

from repro.graph import DataGraph, from_edges, mico_like, with_random_labels, erdos_renyi
from repro.mining import fsm
from repro.pattern import Pattern, canonical_code


def brute_force_mni(graph: DataGraph, p: Pattern) -> int:
    """Oracle MNI: enumerate ALL labeled monomorphisms, build full domains."""
    n = p.num_vertices
    domains = [set() for _ in range(n)]
    for assignment in permutations(range(graph.num_vertices), n):
        ok = all(
            graph.has_edge(assignment[u], assignment[v]) for u, v in p.edges()
        )
        if ok:
            for u in range(n):
                want = p.label_of(u)
                if want is not None and graph.label(assignment[u]) != want:
                    ok = False
                    break
        if ok:
            for u in range(n):
                domains[u].add(assignment[u])
    return min(len(d) for d in domains) if domains else 0


class TestSingleEdgeRound:
    def test_supports_match_brute_force(self):
        g = from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0), (0, 2)],
            labels=[1, 2, 1, 2, 1][:4],
        )
        result = fsm(g, num_edges=1, threshold=1)
        for pattern, support in result.frequent.items():
            assert support == brute_force_mni(g, pattern), repr(pattern)

    def test_threshold_filters(self):
        g = with_random_labels(erdos_renyi(25, 0.2, seed=1), 3, seed=2)
        low = fsm(g, 1, threshold=1)
        high = fsm(g, 1, threshold=10)
        assert set(high.frequent) <= set(low.frequent)


class TestMultiRound:
    def test_two_edge_supports_vs_brute_force(self):
        g = with_random_labels(erdos_renyi(14, 0.3, seed=3), 2, seed=4)
        result = fsm(g, num_edges=2, threshold=2)
        for pattern, support in result.frequent.items():
            assert support == brute_force_mni(g, pattern), repr(pattern)

    def test_completeness_two_edges(self):
        """Every frequent 2-edge labeled pattern is found (Apriori safety)."""
        g = with_random_labels(erdos_renyi(14, 0.3, seed=5), 2, seed=6)
        threshold = 2
        result = fsm(g, num_edges=2, threshold=threshold)
        found_codes = {canonical_code(p) for p in result.frequent}
        # Brute-force: every labeled wedge pattern over 2 labels.
        from repro.pattern import generate_chain

        for la in range(2):
            for lb in range(2):
                for lc in range(2):
                    p = generate_chain(3)
                    p.set_label(0, la)
                    p.set_label(1, lb)
                    p.set_label(2, lc)
                    if brute_force_mni(g, p) >= threshold:
                        assert canonical_code(p) in found_codes

    def test_anti_monotonicity_recorded_rounds(self):
        g = mico_like(0.2)
        result = fsm(g, num_edges=3, threshold=3)
        assert set(result.frequent_by_size) <= {1, 2, 3}
        # Supports never increase as patterns grow (anti-monotone).
        if result.frequent_by_size.get(2) and result.frequent_by_size.get(1):
            max1 = max(result.frequent_by_size[1].values())
            max2 = max(result.frequent_by_size[2].values(), default=0)
            assert max2 <= max1


class TestSymmetryBreakingAblation:
    def test_same_results_both_modes(self):
        g = mico_like(0.15)
        aware = fsm(g, 2, 3)
        unaware = fsm(g, 2, 3, symmetry_breaking=False)
        aware_set = {
            (canonical_code(p), s) for p, s in aware.frequent.items()
        }
        unaware_set = {
            (canonical_code(p), s) for p, s in unaware.frequent.items()
        }
        assert aware_set == unaware_set

    def test_unaware_writes_at_least_as_many(self):
        g = mico_like(0.15)
        aware = fsm(g, 2, 3)
        unaware = fsm(g, 2, 3, symmetry_breaking=False)
        assert unaware.domain_writes >= aware.domain_writes


class TestEngineParity:
    def test_batched_domains_match_per_match_fallback(self):
        """The vectorized group-by computes the per-match path's tables."""
        import sys

        fsm_mod = sys.modules["repro.mining.fsm"]
        g = with_random_labels(erdos_renyi(40, 0.2, seed=31), 2, seed=9)
        batched = fsm(g, 2, 2)
        saved = fsm_mod._np
        fsm_mod._np = None  # force the per-match callback fallback
        try:
            per_match = fsm(g, 2, 2)
        finally:
            fsm_mod._np = saved
        batched_set = {
            (canonical_code(p), s) for p, s in batched.frequent.items()
        }
        per_match_set = {
            (canonical_code(p), s) for p, s in per_match.frequent.items()
        }
        assert batched_set == per_match_set
        assert batched.domain_writes == per_match.domain_writes
        assert batched.domain_bytes == per_match.domain_bytes

    def test_engine_knob_parity(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=33), 3, seed=11)
        results = {
            engine: fsm(g, 2, 2, engine=engine)
            for engine in ("auto", "accel-batch", "reference")
        }
        baseline = {
            (canonical_code(p), s)
            for p, s in results["reference"].frequent.items()
        }
        for engine, result in results.items():
            got = {(canonical_code(p), s) for p, s in result.frequent.items()}
            assert got == baseline, engine


class TestResultShape:
    def test_metadata(self):
        g = mico_like(0.1)
        result = fsm(g, 2, 2)
        assert result.threshold == 2
        assert result.num_edges == 2
        assert result.patterns_explored >= 1
        assert result.total_frequent() == len(result.frequent)
        assert result.domain_bytes >= 0

    def test_empty_round_stops_early(self):
        g = with_random_labels(erdos_renyi(10, 0.1, seed=7), 5, seed=8)
        result = fsm(g, 3, threshold=50)
        assert result.frequent == {}
