"""Tests for the AutoMine-like compiled-schedule baseline."""

from __future__ import annotations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.baselines import (
    automine_clique_count,
    automine_count,
    automine_enumerate,
    automine_motif_counts,
    compile_schedule,
    prgu_count_raw,
)
from repro.core import count
from repro.errors import BudgetExceeded
from repro.graph import erdos_renyi, from_edges, with_random_labels
from repro.mining import motif_counts
from repro.pattern import (
    Pattern,
    automorphism_count,
    generate_chain,
    generate_clique,
    generate_star,
)
from repro.profiling import ExplorationCounters, StoreMeter


# ----------------------------------------------------------------------
# Schedule compilation
# ----------------------------------------------------------------------


class TestCompileSchedule:
    def test_connected_order(self):
        """Every non-first loop level has at least one earlier neighbor."""
        for p in (generate_clique(4), generate_chain(5), generate_star(4)):
            s = compile_schedule(p)
            assert sorted(s.order) == list(range(p.num_vertices))
            for i in range(1, s.depth):
                assert s.earlier_neighbors[i], (p, s.order)

    def test_clique_schedule_all_back_edges(self):
        s = compile_schedule(generate_clique(4))
        for i in range(1, 4):
            assert len(s.earlier_neighbors[i]) == i

    def test_multiplicity_is_automorphism_count(self):
        for p in (generate_clique(3), generate_star(4), generate_chain(4)):
            assert compile_schedule(p).multiplicity == automorphism_count(p)

    def test_vertex_induced_records_non_neighbors(self):
        chain = generate_chain(3)  # 0-1-2: endpoints not adjacent
        s = compile_schedule(chain, vertex_induced=True)
        non_counts = sum(len(x) for x in s.earlier_non_neighbors)
        assert non_counts == 1

    def test_empty_pattern_rejected(self):
        with pytest.raises(ValueError):
            compile_schedule(Pattern(num_vertices=0, edges=()))

    def test_labels_follow_order(self):
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 7)
        p.set_label(1, 9)
        s = compile_schedule(p)
        assert set(s.labels) == {7, 9}
        assert [s.labels[i] for i, u in enumerate(s.order)] == [
            p.label_of(u) for u in s.order
        ]


# ----------------------------------------------------------------------
# Counting correctness (vs the pattern-aware engine)
# ----------------------------------------------------------------------


class TestAutoMineCounting:
    @pytest.mark.parametrize("k", [2, 3, 4])
    def test_cliques_match_engine(self, denser_graph, k):
        assert automine_clique_count(denser_graph, k) == count(
            denser_graph, generate_clique(k)
        )

    @pytest.mark.parametrize(
        "edges",
        [
            [(0, 1), (1, 2)],
            [(0, 1), (1, 2), (2, 3)],
            [(0, 1), (1, 2), (2, 0), (2, 3)],  # tailed triangle
            [(0, 1), (0, 2), (0, 3)],  # star
        ],
    )
    def test_edge_induced_matches_engine(self, random_graph, edges):
        p = Pattern.from_edges(edges)
        assert automine_count(random_graph, p) == count(random_graph, p)

    @pytest.mark.parametrize(
        "edges",
        [
            [(0, 1), (1, 2)],
            [(0, 1), (1, 2), (2, 3), (3, 0)],  # square
        ],
    )
    def test_vertex_induced_matches_engine(self, random_graph, edges):
        p = Pattern.from_edges(edges)
        assert automine_count(random_graph, p, edge_induced=False) == count(
            random_graph, p, edge_induced=False
        )

    def test_labeled_count_matches_engine(self, labeled_graph):
        p = Pattern.from_edges([(0, 1), (1, 2)])
        p.set_label(0, 0)
        p.set_label(2, 1)
        assert automine_count(labeled_graph, p) == count(labeled_graph, p)

    def test_motif_census_matches_engine(self, random_graph):
        ours = motif_counts(random_graph, 3)
        theirs = automine_motif_counts(random_graph, 3)
        assert sorted(ours.values()) == sorted(theirs.values())

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_random_graphs_triangles(self, seed):
        g = erdos_renyi(25, 0.25, seed=seed)
        assert automine_clique_count(g, 3) == count(g, generate_clique(3))


# ----------------------------------------------------------------------
# The costs AutoMine pays (the paper's §2.2.2 critique)
# ----------------------------------------------------------------------


class TestAutoMineCosts:
    def test_explores_multiplicity_times_more_than_engine(self, denser_graph):
        """Raw loop iterations ≈ |Aut| × unique matches on cliques."""
        k = 3
        counters = ExplorationCounters(system="automine-like")
        unique = automine_clique_count(denser_graph, k, counters=counters)
        assert unique > 0
        # Complete raw embeddings alone are |Aut| * unique; explored
        # includes partial assignments so it must exceed that.
        assert counters.matches_explored >= 6 * unique

    def test_matches_prgu_raw_on_symmetric_pattern(self, denser_graph):
        """AutoMine raw count == PRG-U raw count (the paper's model)."""
        p = generate_clique(3)
        counters = ExplorationCounters()
        automine_count(denser_graph, p, counters=counters)
        raw_prgu = prgu_count_raw(denser_graph, p)
        # Count complete embeddings only: re-derive from unique count.
        unique = count(denser_graph, p)
        assert raw_prgu == 6 * unique

    def test_enumeration_pays_dedup_memory(self, denser_graph):
        store = StoreMeter()
        counters = ExplorationCounters()
        got: list[tuple[int, ...]] = []
        n = automine_enumerate(
            denser_graph,
            generate_clique(3),
            got.append,
            counters=counters,
            store=store,
        )
        assert n == len(got) == count(denser_graph, generate_clique(3))
        # Seen-set bytes grow with result size; dedup probes happen per
        # raw embedding (6x the unique count for triangles).
        assert store.peak_bytes >= 8 * 3 * n
        assert counters.canonicality_checks == 6 * n

    def test_enumerate_unique_vertex_sets(self, triangle_graph):
        got: list[tuple[int, ...]] = []
        automine_enumerate(triangle_graph, generate_clique(3), got.append)
        assert len({frozenset(m) for m in got}) == len(got) == 1

    def test_step_budget_raises(self, denser_graph):
        with pytest.raises(BudgetExceeded):
            automine_count(
                denser_graph, generate_clique(3), step_budget=10
            )

    def test_unlabeled_graph_with_labeled_schedule_rejected(self, random_graph):
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 1)
        with pytest.raises(ValueError):
            automine_count(random_graph, p)
