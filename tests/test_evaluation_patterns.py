"""Shape checks for the Figure 9 evaluation patterns p1-p8."""

from repro.pattern import (
    automorphism_count,
    evaluation_patterns,
    pattern_p1,
    pattern_p2,
    pattern_p3,
    pattern_p4,
    pattern_p5,
    pattern_p6,
    pattern_p7,
    pattern_p8,
)


class TestShapes:
    def test_p1_diamond(self):
        p = pattern_p1()
        assert p.num_vertices == 4
        assert p.num_edges == 5
        assert automorphism_count(p) == 4

    def test_p2_labeled_tailed_triangle(self):
        p = pattern_p2()
        assert p.num_vertices == 4
        assert p.num_edges == 4
        assert p.is_fully_labeled
        assert automorphism_count(p) == 1  # labels pin every vertex

    def test_p3_house(self):
        p = pattern_p3()
        assert p.num_vertices == 5
        assert p.num_edges == 6

    def test_p4_clique_with_tail(self):
        p = pattern_p4()
        assert p.num_vertices == 5
        assert p.num_edges == 7
        assert sorted(p.degree(u) for u in p.vertices()) == [1, 3, 3, 3, 4]

    def test_p5_bowtie(self):
        p = pattern_p5()
        assert p.num_vertices == 5
        assert p.num_edges == 6
        assert p.degree(0) == 4
        assert automorphism_count(p) == 8

    def test_p6_near_five_clique(self):
        p = pattern_p6()
        assert p.num_vertices == 5
        assert p.num_edges == 9
        assert automorphism_count(p) == 12  # 3! for the core x 2 for the pair

    def test_p7_maximal_triangle(self):
        p = pattern_p7()
        assert p.anti_vertices() == [3]
        assert p.num_edges == 3
        assert p.num_anti_edges == 3

    def test_p8_chordal_square_anti_edge(self):
        p = pattern_p8()
        assert p.num_edges == 5
        assert p.num_anti_edges == 1
        assert not p.anti_vertices()  # anti-edge endpoints are regular

    def test_all_connected(self):
        for name, p in evaluation_patterns().items():
            assert p.is_connected(), name

    def test_dictionary_complete(self):
        assert set(evaluation_patterns()) == {f"p{i}" for i in range(1, 9)}
