"""Tests for the extend-by-edge / extend-by-vertex operators [C1-C2]."""

from repro.pattern import (
    Pattern,
    are_isomorphic,
    canonical_code,
    extend_by_edge,
    extend_by_vertex,
    generate_chain,
    generate_clique,
    generate_star,
)


class TestExtendByEdge:
    def test_single_edge_extends_to_wedge_only(self):
        out = extend_by_edge([Pattern.from_edges([(0, 1)])])
        assert len(out) == 1
        assert are_isomorphic(out[0], generate_chain(3))

    def test_wedge_extensions(self):
        out = extend_by_edge([generate_chain(3)])
        # wedge + edge: triangle, 4-path, 4-star
        assert len(out) == 3

    def test_results_unique_across_inputs(self):
        fam = extend_by_edge([generate_chain(3)])
        fam2 = extend_by_edge(fam)
        codes = [canonical_code(p) for p in fam2]
        assert len(codes) == len(set(codes))

    def test_labels_preserved_and_new_vertex_wildcard(self):
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 3)
        p.set_label(1, 4)
        for q in extend_by_edge([p]):
            labeled = [u for u in q.vertices() if q.label_of(u) is not None]
            assert len(labeled) == 2  # original labels survive; new is wildcard

    def test_edge_count_increases_by_one(self):
        for q in extend_by_edge([generate_clique(3)]):
            assert q.num_edges == 4


class TestExtendByVertex:
    def test_single_vertex_counts(self):
        out = extend_by_vertex([Pattern.from_edges([(0, 1)])])
        # new vertex attached to 1 or 2 anchors: wedge and triangle
        assert len(out) == 2

    def test_star_extension_includes_bigger_star(self):
        out = extend_by_vertex([generate_star(3)])
        assert any(are_isomorphic(p, generate_star(4)) for p in out)

    def test_vertex_count_increases_by_one(self):
        for q in extend_by_vertex([generate_clique(3)]):
            assert q.num_vertices == 4

    def test_includes_full_attachment(self):
        out = extend_by_vertex([generate_clique(3)])
        assert any(are_isomorphic(p, generate_clique(4)) for p in out)

    def test_results_connected(self):
        assert all(p.is_connected() for p in extend_by_vertex([generate_chain(3)]))
