"""Property-based invariants on the whole pipeline (hypothesis).

These tests generate random graphs and random connected patterns and check
the system-level invariants the paper's design rests on:

* the engine count equals the networkx oracle (edge- and vertex-induced);
* symmetry breaking removes exactly the |Aut| redundancy;
* matching-order sequences partition the match space (no dupes, no gaps);
* plan generation is deterministic.
"""

import random

from hypothesis import given, settings, strategies as st

from repro.core import count, generate_plan, match
from repro.graph import erdos_renyi
from repro.pattern import Pattern, automorphism_count
from repro.testing.oracles import nx_count_edge_induced, nx_count_vertex_induced


def random_connected_pattern(rng: random.Random, max_vertices: int = 5) -> Pattern:
    n = rng.randint(2, max_vertices)
    edges = [(rng.randrange(v), v) for v in range(1, n)]  # random tree
    for u in range(n):
        for v in range(u + 1, n):
            if (u, v) not in edges and rng.random() < 0.35:
                edges.append((u, v))
    return Pattern(num_vertices=n, edges=edges)


seeds = st.integers(min_value=0, max_value=100_000)


class TestOracleEquivalence:
    @given(seeds)
    @settings(max_examples=20, deadline=None)
    def test_edge_induced(self, seed):
        rng = random.Random(seed)
        p = random_connected_pattern(rng)
        g = erdos_renyi(16, 0.3, seed=seed)
        assert count(g, p) == nx_count_edge_induced(g, p)

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_vertex_induced(self, seed):
        rng = random.Random(seed)
        p = random_connected_pattern(rng, max_vertices=4)
        g = erdos_renyi(14, 0.35, seed=seed + 1)
        assert count(g, p, edge_induced=False) == nx_count_vertex_induced(g, p)


class TestSymmetryInvariant:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_unaware_is_aut_multiple(self, seed):
        rng = random.Random(seed)
        p = random_connected_pattern(rng, max_vertices=4)
        g = erdos_renyi(14, 0.3, seed=seed + 2)
        canonical = count(g, p)
        raw = count(g, p, symmetry_breaking=False)
        assert raw == canonical * automorphism_count(p)


class TestEnumerationInvariants:
    @given(seeds)
    @settings(max_examples=12, deadline=None)
    def test_matches_distinct_and_valid(self, seed):
        rng = random.Random(seed)
        p = random_connected_pattern(rng, max_vertices=4)
        g = erdos_renyi(14, 0.3, seed=seed + 3)
        seen = set()

        def check(m):
            assert m.mapping not in seen
            seen.add(m.mapping)
            for u, v in p.edges():
                assert g.has_edge(m[u], m[v])
            assert len(set(m.vertices())) == p.num_vertices

        total = match(g, p, callback=check)
        assert total == len(seen)


class TestPlanDeterminism:
    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_same_pattern_same_plan(self, seed):
        rng = random.Random(seed)
        p = random_connected_pattern(rng)
        plan_a = generate_plan(p)
        plan_b = generate_plan(p)
        assert plan_a.partial_orders == plan_b.partial_orders
        assert plan_a.core == plan_b.core
        assert [oc.sequences for oc in plan_a.ordered_cores] == [
            oc.sequences for oc in plan_b.ordered_cores
        ]

    @given(seeds)
    @settings(max_examples=15, deadline=None)
    def test_core_is_connected_cover(self, seed):
        rng = random.Random(seed)
        p = random_connected_pattern(rng)
        plan = generate_plan(p)
        cover = set(plan.core)
        for u, v in p.edges():
            assert u in cover or v in cover
