"""Tests for existence queries and the clustering-coefficient bound."""

import networkx as nx

from repro.graph import complete_graph, erdos_renyi, from_edges, star_graph
from repro.mining import (
    clique_existence,
    gcc_exceeds_bound,
    global_clustering_coefficient,
)


class TestCliqueExistence:
    def test_positive_and_negative(self):
        g = erdos_renyi(25, 0.3, seed=1)
        assert clique_existence(g, 3)
        assert not clique_existence(g, 10)

    def test_complete_graph(self):
        assert clique_existence(complete_graph(14), 14)
        assert not clique_existence(complete_graph(13), 14)


class TestGcc:
    def test_matches_networkx_transitivity(self, random_graph):
        got = global_clustering_coefficient(random_graph)
        expected = nx.transitivity(random_graph.to_networkx())
        assert abs(got - expected) < 1e-12

    def test_star_has_zero_gcc(self):
        assert global_clustering_coefficient(star_graph(10)) == 0.0

    def test_complete_graph_gcc_one(self):
        assert global_clustering_coefficient(complete_graph(6)) == 1.0

    def test_empty_wedges(self):
        g = from_edges([(0, 1)])  # single edge: no wedges at all
        assert global_clustering_coefficient(g) == 0.0


class TestGccBound:
    def test_exceeds_low_bound(self, denser_graph):
        gcc = global_clustering_coefficient(denser_graph)
        result = gcc_exceeds_bound(denser_graph, gcc / 2)
        assert result.exceeded
        assert result.wedges > 0

    def test_early_termination_saves_work(self, denser_graph):
        from repro.core import count
        from repro.pattern import generate_clique

        total_triangles = count(denser_graph, generate_clique(3))
        result = gcc_exceeds_bound(denser_graph, 0.01)
        assert result.exceeded
        assert result.triangles_seen <= total_triangles

    def test_does_not_exceed_high_bound(self, denser_graph):
        gcc = global_clustering_coefficient(denser_graph)
        result = gcc_exceeds_bound(denser_graph, gcc * 1.5)
        assert not result.exceeded

    def test_no_wedges(self):
        result = gcc_exceeds_bound(from_edges([(0, 1)]), 0.5)
        assert not result.exceeded
        assert result.wedges == 0

    def test_boundary_consistency(self, denser_graph):
        """The bound check must agree with the exact GCC on both sides."""
        gcc = global_clustering_coefficient(denser_graph)
        assert gcc_exceeds_bound(denser_graph, gcc * 0.99).exceeded
        assert not gcc_exceeds_bound(denser_graph, gcc * 1.01).exceeded
