"""End-to-end integration: all systems agree on all workloads.

This is the repository's consistency matrix: for each workload, the
pattern-aware engine, the BFS baseline, the DFS baseline, the RStream-like
baseline and (where applicable) the purpose-built G-Miner algorithms must
produce identical results on the dataset stand-ins.
"""

import pytest

from repro.baselines import (
    bfs_clique_count,
    bfs_fsm,
    bfs_motif_count,
    dfs_clique_count,
    dfs_fsm,
    dfs_motif_count,
    dfs_pattern_match,
    gminer_triangle_count,
    prgu_count,
    rstream_clique_count,
    rstream_motif_count,
)
from repro.core import count
from repro.graph import mico_like, patents_like
from repro.mining import clique_count, fsm, motif_counts
from repro.pattern import canonical_code, evaluation_patterns, generate_clique


@pytest.fixture(scope="module")
def mico():
    return mico_like(0.12)


@pytest.fixture(scope="module")
def patents():
    return patents_like(0.08)


class TestConsistencyMatrix:
    def test_motif_counting_all_systems(self, patents):
        engine = {
            canonical_code(p): n for p, n in motif_counts(patents, 3).items()
        }
        for fn in (bfs_motif_count, dfs_motif_count, rstream_motif_count):
            got, _ = fn(patents, 3)
            assert got == engine, fn.__name__

    def test_clique_counting_all_systems(self, patents):
        expected = clique_count(patents, 3)
        for fn in (bfs_clique_count, dfs_clique_count, rstream_clique_count):
            got, _ = fn(patents, 3)
            assert got == expected, fn.__name__
        got, _ = gminer_triangle_count(patents)
        assert got == expected

    def test_fsm_all_systems(self, mico):
        engine = {
            canonical_code(p): s for p, s in fsm(mico, 2, 4).frequent.items()
        }
        for fn in (bfs_fsm, dfs_fsm):
            got, _ = fn(mico, 2, 4)
            assert got == engine, fn.__name__

    def test_pattern_matching_engine_vs_dfs(self, patents):
        for name, p in evaluation_patterns().items():
            if name in ("p2", "p7", "p8"):
                continue  # p2 needs labels; p7/p8 need constraint support
            if p.num_vertices >= 5:
                continue  # keep the integration run fast
            got, _ = dfs_pattern_match(patents, p)
            assert got == count(patents, p), name

    def test_prgu_consistency(self, patents):
        p = generate_clique(3)
        assert prgu_count(patents, p) == count(patents, p)


class TestEndToEndScenarios:
    def test_social_recommendation_scenario(self, patents):
        """Anti-edge use case from §3.1.1: unrelated pairs with >= 2 mutual
        friends must be non-adjacent in every reported match."""
        from repro.core import match
        from repro.pattern import Pattern

        pa = Pattern.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)], anti_edges=[(1, 3)]
        )
        violations = []

        def verify(m):
            if patents.has_edge(m[1], m[3]):
                violations.append(m)

        match(patents, pa, callback=verify)
        assert not violations

    def test_existence_query_fast_on_dense(self, mico):
        """Existence queries touch a fraction of the full search space."""
        from repro.core import EngineStats, ExplorationControl, match

        p = generate_clique(3)
        full_stats = EngineStats()
        count(mico, p, stats=full_stats)

        control = ExplorationControl()
        early_stats = EngineStats()
        match(
            mico,
            p,
            callback=lambda m: control.stop(),
            control=control,
            stats=early_stats,
        )
        assert early_stats.partial_matches < full_stats.partial_matches

    def test_fsm_then_match_frequent_pattern(self, mico):
        """FSM output patterns can be fed straight back into match()."""
        result = fsm(mico, 2, 5)
        if not result.frequent:
            pytest.skip("no frequent patterns at this scale")
        some_pattern = next(iter(result.frequent))
        assert count(mico, some_pattern) > 0

    def test_labeled_dataset_round_trip(self, tmp_path, mico):
        """Save + reload the dataset, results unchanged."""
        from repro.graph import load_labeled, save_edge_list, save_labels

        epath, lpath = tmp_path / "g.edges", tmp_path / "g.labels"
        save_edge_list(mico, epath)
        save_labels(mico, lpath)
        reloaded = load_labeled(epath, lpath)
        assert clique_count(reloaded, 3) == clique_count(mico, 3)
