"""Tests for isomorphism, automorphisms and canonical codes."""

import random

from hypothesis import given, settings, strategies as st

from repro.pattern import (
    Pattern,
    are_isomorphic,
    automorphism_count,
    automorphisms,
    canonical_code,
    canonical_form,
    find_isomorphism,
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
    pattern_p7,
)
from repro.pattern.canonical import canonical_permutation


class TestAutomorphisms:
    def test_known_groups(self):
        assert automorphism_count(generate_clique(4)) == 24
        assert automorphism_count(generate_cycle(4)) == 8
        assert automorphism_count(generate_cycle(5)) == 10
        assert automorphism_count(generate_star(4)) == 6
        assert automorphism_count(generate_chain(4)) == 2

    def test_identity_always_present(self):
        p = generate_chain(3)
        assert list(range(3)) in automorphisms(p)

    def test_labels_restrict_automorphisms(self):
        p = generate_clique(3)
        p.set_label(0, 1)
        p.set_label(1, 2)
        p.set_label(2, 3)
        assert automorphism_count(p) == 1

    def test_partial_labels(self):
        p = generate_clique(3)
        p.set_label(0, 1)  # vertex 0 pinned, 1 and 2 still swappable
        assert automorphism_count(p) == 2

    def test_anti_edges_are_second_color(self):
        # Square with one anti-diagonal: the anti-edge breaks the dihedral
        # group down to the symmetries fixing that diagonal pair.
        p = generate_cycle(4)
        p.add_anti_edge(0, 2)
        assert automorphism_count(p) == 4

    def test_anti_vertex_breaks_symmetry(self):
        # Triangle alone: |Aut| = 6.  With an anti-vertex attached to one
        # corner, only the swap of the other two corners survives.
        p = generate_clique(3)
        p.add_anti_vertex([0])
        assert automorphism_count(p) == 2

    def test_p7_fully_connected_anti_vertex_keeps_symmetry(self):
        assert automorphism_count(pattern_p7()) == 6


class TestIsomorphism:
    def test_relabeled_patterns_isomorphic(self):
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 3)])
        q = Pattern.from_edges([(3, 2), (2, 1), (1, 0)])
        assert are_isomorphic(p, q)

    def test_non_isomorphic(self):
        assert not are_isomorphic(generate_star(4), generate_chain(4))

    def test_mapping_is_valid(self):
        p = generate_cycle(5)
        q = Pattern.from_edges([(0, 2), (2, 4), (4, 1), (1, 3), (3, 0)])
        mapping = find_isomorphism(p, q)
        assert mapping is not None
        for u, v in p.edges():
            assert q.are_connected(mapping[u], mapping[v])

    def test_labels_must_match(self):
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 1)
        q = Pattern.from_edges([(0, 1)])
        q.set_label(0, 2)
        assert not are_isomorphic(p, q)

    def test_anti_edges_must_match(self):
        p = Pattern.from_edges([(0, 1), (1, 2)])
        q = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        assert not are_isomorphic(p, q)


class TestCanonicalCode:
    def test_code_equal_iff_isomorphic(self):
        p = Pattern.from_edges([(0, 1), (1, 2), (0, 2), (2, 3)])
        q = Pattern.from_edges([(3, 1), (1, 0), (3, 0), (0, 2)])
        assert canonical_code(p) == canonical_code(q)
        r = generate_star(4)
        assert canonical_code(p) != canonical_code(r)

    def test_canonical_form_isomorphic_to_original(self):
        p = Pattern.from_edges([(0, 2), (2, 1), (1, 3)], anti_edges=[(0, 3)])
        p.set_label(2, 9)
        q = canonical_form(p)
        assert are_isomorphic(p, q)
        assert canonical_code(q) == canonical_code(p)

    def test_canonical_permutation_places_vertices(self):
        p = Pattern.from_edges([(0, 1), (1, 2)])
        p.set_label(0, 5)
        code, order = canonical_permutation(p)
        assert sorted(order) == [0, 1, 2]
        assert code == canonical_code(p)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=30, deadline=None)
    def test_code_invariant_under_random_relabeling(self, seed):
        rng = random.Random(seed)
        n = rng.randint(2, 5)
        edges = [
            (u, v)
            for u in range(n)
            for v in range(u + 1, n)
            if rng.random() < 0.6
        ]
        if not edges:
            edges = [(0, 1)]
        p = Pattern(num_vertices=n, edges=edges)
        perm = list(range(n))
        rng.shuffle(perm)
        q = Pattern(
            num_vertices=n, edges=[(perm[u], perm[v]) for u, v in edges]
        )
        assert canonical_code(p) == canonical_code(q)

    def test_empty_pattern_code(self):
        assert canonical_code(Pattern()) == (0, (), ())
