"""Tests for the Arabesque-like BFS baseline: correctness + cost profile."""

import pytest

from repro.baselines import (
    bfs_clique_count,
    bfs_fsm,
    bfs_motif_count,
    canonical_growth_order,
    is_canonical_embedding,
)
from repro.errors import BudgetExceeded, MemoryBudgetExceeded
from repro.graph import erdos_renyi, mico_like
from repro.mining import clique_count, fsm, motif_counts
from repro.pattern import canonical_code


class TestCanonicality:
    def test_exactly_one_canonical_order_per_set(self, random_graph):
        # For any connected vertex set, exactly one growth order passes.
        from itertools import permutations

        from repro.core import count as _count

        tri_sets = set()
        from repro.mining import list_cliques

        for trio in list_cliques(random_graph, 3)[:10]:
            orders = [
                perm
                for perm in permutations(trio)
                if is_canonical_embedding(random_graph, perm)
            ]
            assert len(orders) == 1

    def test_canonical_order_starts_at_min(self, random_graph):
        order = canonical_growth_order(random_graph, (7, 3, 9))
        assert order[0] == 3


class TestAgainstEngine:
    def test_motifs_equal(self, random_graph):
        baseline, counters = bfs_motif_count(random_graph, 3)
        engine = {
            canonical_code(p): n for p, n in motif_counts(random_graph, 3).items()
        }
        assert baseline == engine
        assert counters.result_size == sum(engine.values())

    def test_cliques_equal(self, denser_graph):
        baseline, _ = bfs_clique_count(denser_graph, 4)
        assert baseline == clique_count(denser_graph, 4)

    def test_fsm_equal(self):
        g = mico_like(0.15)
        baseline, _ = bfs_fsm(g, 2, 3)
        engine = {
            canonical_code(p): s for p, s in fsm(g, 2, 3).frequent.items()
        }
        assert baseline == engine


class TestCostProfile:
    """The Figure 1 claims: baselines explore far more than the result size
    and pay canonicality/isomorphism checks; Peregrine pays none."""

    def test_explored_exceeds_results(self, random_graph):
        _, counters = bfs_motif_count(random_graph, 3)
        assert counters.matches_explored > counters.result_size
        assert counters.canonicality_checks > 0
        assert counters.isomorphism_checks >= counters.result_size

    def test_engine_pays_no_checks(self, random_graph):
        from repro.core import EngineStats, count
        from repro.pattern import generate_clique

        stats = EngineStats()
        count(random_graph, generate_clique(3), stats=stats)
        assert stats.canonicality_checks == 0
        assert stats.isomorphism_checks == 0

    def test_clique_waste_ratio(self, denser_graph):
        """Most explored embeddings are not cliques (the 99.7% waste)."""
        _, counters = bfs_clique_count(denser_graph, 4)
        assert counters.matches_explored > 2 * counters.result_size

    def test_memory_grows_with_level_width(self, denser_graph):
        _, c3 = bfs_clique_count(denser_graph, 3)
        _, c4 = bfs_motif_count(denser_graph, 3)
        # Unfiltered motif enumeration must store more than clique-filtered.
        assert c4.peak_store_bytes >= c3.peak_store_bytes


class TestBudgets:
    def test_step_budget_raises(self, denser_graph):
        with pytest.raises(BudgetExceeded):
            bfs_motif_count(denser_graph, 4, step_budget=100)

    def test_store_budget_raises(self, denser_graph):
        with pytest.raises(MemoryBudgetExceeded):
            bfs_motif_count(denser_graph, 4, store_budget=500)

    def test_generous_budget_passes(self, random_graph):
        counts, _ = bfs_motif_count(
            random_graph, 3, step_budget=10**9, store_budget=10**12
        )
        assert counts
