"""Unit tests for the Pattern class (anti-edges, anti-vertices, labels)."""

import pytest

from repro.errors import PatternError
from repro.pattern import Pattern, generate_clique


class TestMutators:
    def test_add_edge_grows_vertex_set(self):
        p = Pattern()
        p.add_edge(0, 4)
        assert p.num_vertices == 5
        assert p.are_connected(0, 4)

    def test_self_loop_rejected(self):
        with pytest.raises(PatternError):
            Pattern().add_edge(1, 1)

    def test_anti_edge_self_loop_rejected(self):
        with pytest.raises(PatternError):
            Pattern().add_anti_edge(2, 2)

    def test_edge_anti_edge_conflict(self):
        p = Pattern.from_edges([(0, 1)])
        with pytest.raises(PatternError):
            p.add_anti_edge(0, 1)

    def test_anti_edge_edge_conflict(self):
        p = Pattern()
        p.add_anti_edge(0, 1)
        with pytest.raises(PatternError):
            p.add_edge(1, 0)

    def test_remove_edge(self):
        p = Pattern.from_edges([(0, 1), (1, 2)])
        p.remove_edge(0, 1)
        assert not p.are_connected(0, 1)
        assert p.num_edges == 1

    def test_remove_missing_edge_raises(self):
        with pytest.raises(PatternError):
            Pattern.from_edges([(0, 1)]).remove_edge(0, 2)

    def test_remove_anti_edge(self):
        p = Pattern.from_edges([(0, 1)], anti_edges=[(0, 2)])
        p.remove_anti_edge(0, 2)
        assert p.num_anti_edges == 0

    def test_labels(self):
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 7)
        assert p.label_of(0) == 7
        assert p.label_of(1) is None
        assert p.is_labeled
        p.clear_label(0)
        assert not p.is_labeled

    def test_add_vertex(self):
        p = Pattern.from_edges([(0, 1)])
        w = p.add_vertex()
        assert w == 2
        assert p.num_vertices == 3

    def test_copy_is_independent(self):
        p = Pattern.from_edges([(0, 1)])
        q = p.copy()
        q.add_edge(1, 2)
        assert p.num_vertices == 2
        assert q.num_vertices == 3


class TestAntiVertices:
    def test_classification(self):
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 0)])
        av = p.add_anti_vertex([0, 1, 2])
        assert p.is_anti_vertex(av)
        assert not p.is_anti_vertex(0)
        assert p.anti_vertices() == [av]
        assert p.regular_vertices() == [0, 1, 2]

    def test_anti_vertex_needs_neighbors(self):
        with pytest.raises(PatternError):
            Pattern.from_edges([(0, 1)]).add_anti_vertex([])

    def test_vertex_with_edge_and_anti_edge_is_regular(self):
        p = Pattern.from_edges([(0, 1)], anti_edges=[(1, 2)])
        p.add_edge(2, 0)
        assert not p.is_anti_vertex(2)

    def test_without_anti_vertices(self):
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 0)])
        p.add_anti_vertex([0, 2])
        stripped = p.without_anti_vertices()
        assert stripped.num_vertices == 3
        assert stripped.num_anti_edges == 0
        assert stripped.num_edges == 3

    def test_without_anti_vertices_renames_densely(self):
        p = Pattern(num_vertices=0)
        p.add_anti_edge(0, 1)  # vertex 0 anti-vertex if no regular edge
        p.add_edge(1, 2)
        stripped = p.without_anti_vertices()
        assert stripped.num_vertices == 2
        assert stripped.are_connected(0, 1)


class TestStructure:
    def test_neighbors_and_degree(self):
        p = Pattern.from_edges([(0, 1), (0, 2)], anti_edges=[(0, 3)])
        assert p.neighbors(0) == [1, 2]
        assert p.anti_neighbors(0) == [3]
        assert p.degree(0) == 2

    def test_connectivity(self):
        assert Pattern.from_edges([(0, 1), (1, 2)]).is_connected()
        disconnected = Pattern(num_vertices=4, edges=[(0, 1), (2, 3)])
        assert not disconnected.is_connected()

    def test_connectivity_ignores_anti_vertices(self):
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 0)])
        p.add_anti_vertex([0])
        assert p.is_connected()

    def test_empty_pattern_not_connected(self):
        assert not Pattern().is_connected()

    def test_vertex_induced_closure(self):
        p = Pattern.from_edges([(0, 1), (1, 2)])  # wedge
        closed = p.vertex_induced_closure()
        assert closed.are_anti_adjacent(0, 2)
        assert closed.num_anti_edges == 1

    def test_closure_skips_existing_anti_edges(self):
        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        closed = p.vertex_induced_closure()
        assert closed.num_anti_edges == 1

    def test_closure_ignores_anti_vertices(self):
        p = Pattern.from_edges([(0, 1), (1, 2)])
        p.add_anti_vertex([0])
        closed = p.vertex_induced_closure()
        # Only the (0, 2) regular pair is closed; the anti-vertex pair isn't.
        assert closed.are_anti_adjacent(0, 2)
        assert not closed.are_anti_adjacent(1, 3)

    def test_degree_sequence(self):
        assert generate_clique(4).degree_sequence() == [3, 3, 3, 3]


class TestIdentity:
    def test_equality_exact(self):
        assert Pattern.from_edges([(0, 1)]) == Pattern.from_edges([(0, 1)])
        assert Pattern.from_edges([(0, 1)]) != Pattern.from_edges([(1, 2)])

    def test_hashable(self):
        s = {Pattern.from_edges([(0, 1)]), Pattern.from_edges([(0, 1)])}
        assert len(s) == 1

    def test_signature_includes_labels(self):
        p = Pattern.from_edges([(0, 1)])
        q = p.copy()
        q.set_label(0, 1)
        assert p != q
