"""Tests for the cost-model-driven adaptive query planner.

Covers the :mod:`repro.runtime.planner` selection logic (engine,
schedule, chunking, worker budget), the probe-once contract shared by
admission and planning, fuzzed result parity between ``plan="auto"``
and the fixed-threshold baseline, and regression tests for the three
estimator bugfixes that shipped with the planner:

* evenly-spaced probe sampling must use a rounded stride (an integer
  step degrades to consecutive hub-prefix entries on small frontiers);
* cached probe measurements must re-resolve the explosive threshold at
  decision time (retuning must flip admission on warm sessions);
* the conservative growth floor belongs to admission only — planners
  read the unclamped extrapolation.
"""

from __future__ import annotations

import pytest

from repro.core.session import ExecOptions, MiningSession
from repro.errors import QueryRefusedError
from repro.graph.builder import from_edges
from repro.graph.generators import (
    chain_graph,
    erdos_renyi,
    power_law,
    star_graph,
)
from repro.pattern.generators import (
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
)
from repro.runtime import guards, planner

accel = pytest.importorskip("numpy", reason="planner engine choices need the accel tier")  # noqa: F841


def hub_tail_graph(num_hubs: int = 10, num_tail: int = 90):
    """Hubs interconnected and touching every tail; tail touches hubs only.

    Degree ordering puts the hubs in the frontier prefix, which is
    exactly the shape that exposed the probe's stride bias.
    """
    edges = []
    hubs = range(num_hubs)
    for i in hubs:
        for j in hubs:
            if i < j:
                edges.append((i, j))
        for t in range(num_hubs, num_hubs + num_tail):
            edges.append((i, t))
    return from_edges(edges, num_vertices=num_hubs + num_tail)


# ----------------------------------------------------------------------
# Bugfix regressions
# ----------------------------------------------------------------------


class TestProbeSamplingStride:
    def test_even_sample_on_hub_heavy_frontier(self):
        """The probe must stride the whole frontier, not its hub prefix.

        With 100 starts and a 60-probe budget the old integer step
        (``max(1, 100 // 60) == 1``) sampled the first 60 consecutive
        entries — all hubs plus their immediate tail — inflating
        ``avg_expansion``.  The rounded stride ``i * size // k`` visits
        60 distinct evenly-spaced entries instead.
        """
        g = hub_tail_graph()
        session = MiningSession(g)
        ordered = session.ordered
        n = ordered.num_vertices
        frontier = list(range(n - 1, -1, -1))  # hub-first probe order

        def fanout(v):
            return len(ordered.neighbors_below(v, v))

        k = 60
        even = [frontier[(i * n) // k] for i in range(k)]
        consecutive = frontier[:k]
        even_avg = sum(fanout(v) for v in even) / k
        biased_avg = sum(fanout(v) for v in consecutive) / k
        assert even_avg < biased_avg  # the fixture really is hub-heavy

        est = guards.estimate_cost(g, generate_clique(3), sample=k)
        assert est.sampled == k
        assert est.avg_expansion == pytest.approx(even_avg)
        assert est.avg_expansion != pytest.approx(biased_avg)

    def test_probe_indices_are_distinct_for_any_sample(self):
        for size in (1, 2, 7, 63, 64, 100, 1000):
            for k in (1, 2, 63, 64):
                k_eff = min(k, size)
                idx = [(i * size) // k_eff for i in range(k_eff)]
                assert len(set(idx)) == k_eff
                assert all(0 <= i < size for i in idx)


class TestThresholdRetune:
    def test_retuned_threshold_flips_admission_on_warm_session(
        self, monkeypatch
    ):
        """Cached probes must re-resolve the threshold at decision time.

        The session caches probe *measurements* per (pattern, flags);
        the old cache froze the whole estimate with the threshold baked
        in, so retuning ``EXPLOSIVE_PARTIALS`` silently never applied to
        warm sessions.
        """
        session = MiningSession(erdos_renyi(80, 0.2, seed=9))
        pattern = generate_clique(3)
        # Warm the probe cache under the roomy default threshold.
        assert session.count(pattern, guard="refuse") > 0
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        with pytest.raises(QueryRefusedError):
            session.count(pattern, guard="refuse")

    def test_resolve_threshold_rebinds_only_when_stale(self):
        est = guards.estimate_cost(erdos_renyi(60, 0.2, seed=1),
                                   generate_clique(3))
        same = guards.resolve_threshold(est)
        assert same is est  # fresh estimate: no copy
        retuned = guards.resolve_threshold(est, threshold=1.0)
        assert retuned.threshold == 1.0
        assert retuned.explosive
        assert retuned.avg_expansion == est.avg_expansion


class TestGrowthFloor:
    def test_admission_floors_but_raw_extrapolation_shrinks(self):
        """Sub-1.0 growth must shrink the raw prediction, not the guard's.

        On a path graph the second-level fanout is below 1; admission
        keeps the conservative floor (a shrinking frontier must not talk
        the guard out of refusing) while the planner-facing raw
        extrapolation honours the measured trend.
        """
        est = guards.estimate_cost(chain_graph(60), generate_chain(4))
        assert 0.0 < est.growth < 1.0
        deeper = est.pattern_vertices - 2
        assert est.predicted_partials == pytest.approx(est.level1_volume)
        assert est.predicted_partials_raw == pytest.approx(
            est.level1_volume * est.growth**deeper
        )
        assert est.predicted_partials_raw < est.predicted_partials

    def test_zero_growth_star_is_fully_degenerate(self):
        est = guards.estimate_cost(star_graph(60), generate_chain(3))
        assert est.growth == 0.0
        assert est.predicted_partials == pytest.approx(est.level1_volume)
        assert est.predicted_partials_raw == 0.0


# ----------------------------------------------------------------------
# Plan selection
# ----------------------------------------------------------------------


class TestPlanSelection:
    def test_dense_frontier_chooses_batched_engine(self):
        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        plan = planner.plan_query(session, generate_clique(3))
        assert plan.engine == "accel-batch"
        assert plan.estimate is not None
        assert plan.reasons  # every choice is explained

    def test_tiny_level1_volume_stays_on_reference(self):
        session = MiningSession(chain_graph(30))
        plan = planner.plan_query(session, generate_chain(3))
        assert plan.engine == "reference"

    def test_pinned_engine_passes_through(self):
        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        plan = planner.plan_query(
            session, generate_clique(3),
            session.options(engine="reference"),
        )
        assert plan.engine == "reference"
        assert any("pinned" in r for r in plan.reasons)

    def test_stats_hook_pins_reference(self):
        from repro.core.engine import EngineStats

        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        plan = planner.plan_query(
            session, generate_clique(3),
            session.options(stats=EngineStats()),
        )
        assert plan.engine == "reference"

    def test_skewed_frontier_chooses_dynamic_schedule(self):
        session = MiningSession(power_law(1500, gamma=2.1, d_min=4, seed=7))
        plan = planner.plan_query(
            session, generate_clique(3), num_workers=4
        )
        assert plan.schedule == "dynamic"
        assert plan.chunk_hint is not None and plan.chunk_hint >= 1

    def test_uniform_frontier_chooses_static_schedule(self):
        session = MiningSession(erdos_renyi(300, 0.05, seed=5))
        est = planner.plan_query(session, generate_clique(3)).estimate
        if est.hub_count == 0 and est.hub_skew < planner.SKEW_DYNAMIC_THRESHOLD:
            plan = planner.plan_query(
                session, generate_clique(3), num_workers=4
            )
            assert plan.schedule == "static"

    def test_worker_budget_capped_by_measured_work(self):
        session = MiningSession(star_graph(20))
        plan = planner.plan_query(session, generate_chain(3), num_workers=8)
        assert plan.num_workers == 1

    def test_explosive_estimate_caps_workers(self, monkeypatch):
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        plan = planner.plan_query(session, generate_clique(4), num_workers=8)
        assert plan.num_workers <= guards.DOWNGRADE_MAX_WORKERS

    def test_explosive_raw_prediction_tightens_frontier_chunk(
        self, monkeypatch
    ):
        monkeypatch.setattr(planner, "TIGHTEN_PARTIALS", 1.0)
        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        plan = planner.plan_query(session, generate_clique(3))
        assert plan.frontier_chunk == planner.PLANNED_FRONTIER_CHUNK
        pinned = planner.plan_query(
            session, generate_clique(3),
            session.options(frontier_chunk=512),
        )
        assert pinned.frontier_chunk == 512  # never loosened

    def test_explicit_chunk_hint_wins(self):
        session = MiningSession(power_law(1500, gamma=2.1, d_min=4, seed=7))
        plan = planner.plan_query(
            session, generate_clique(3),
            session.options(chunk_hint=17), num_workers=4,
        )
        assert plan.chunk_hint == 17

    def test_apply_plan_rewrites_exec_options(self):
        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        plan = planner.plan_query(session, generate_clique(3))
        opts = planner.apply_plan(plan, session.defaults)
        assert opts.engine == plan.engine
        assert opts.schedule == plan.schedule
        assert opts.frontier_chunk == plan.frontier_chunk
        assert opts.chunk_hint == plan.chunk_hint

    def test_plan_dict_and_describe_are_stable(self):
        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        plan = planner.plan_query(session, generate_clique(3))
        payload = plan.as_dict()
        assert set(payload) >= {
            "engine", "schedule", "frontier_chunk", "chunk_hint",
            "num_workers", "reasons", "estimate",
        }
        assert payload["estimate"]["explosive"] is False
        text = plan.describe()
        assert f"engine={plan.engine}" in text
        assert f"schedule={plan.schedule}" in text

    def test_workload_plan_fuses_when_any_member_is_worthy(self):
        session = MiningSession(erdos_renyi(300, 0.1, seed=3))
        patterns = [generate_clique(3), generate_chain(3)]
        plan = planner.plan_workload(session, patterns)
        assert plan.engine == "fused"
        empty = planner.plan_workload(session, [])
        assert empty.engine == "reference"

    def test_workload_plan_on_sparse_members_stays_reference(self):
        session = MiningSession(chain_graph(30))
        plan = planner.plan_workload(
            session, [generate_chain(3), generate_star(3)]
        )
        assert plan.engine == "reference"

    def test_invalid_planner_value_rejected(self):
        session = MiningSession(erdos_renyi(40, 0.2, seed=1))
        with pytest.raises(ValueError, match="planner must be one of"):
            session.count(generate_clique(3), plan="always")


# ----------------------------------------------------------------------
# Probe-once contract
# ----------------------------------------------------------------------


class TestProbeOnce:
    @pytest.fixture()
    def counting(self, monkeypatch):
        calls = []
        real = guards.estimate_cost

        def wrapper(*args, **kwargs):
            calls.append(args)
            return real(*args, **kwargs)

        monkeypatch.setattr(guards, "estimate_cost", wrapper)
        return calls

    def test_guarded_planned_query_probes_exactly_once(self, counting):
        """Admission and planning share one probe walk per query."""
        session = MiningSession(erdos_renyi(120, 0.1, seed=2))
        session.count(generate_clique(3), guard="downgrade", plan="auto")
        assert len(counting) == 1

    def test_warm_session_never_reprobes(self, counting):
        session = MiningSession(erdos_renyi(120, 0.1, seed=2))
        pattern = generate_clique(3)
        session.count(pattern, guard="downgrade", plan="auto")
        session.count(pattern, plan="auto")
        session.count(pattern, guard="refuse")
        assert len(counting) == 1

    def test_distinct_flags_probe_separately(self, counting):
        session = MiningSession(erdos_renyi(120, 0.1, seed=2))
        pattern = generate_clique(3)
        session.count(pattern, plan="auto")
        session.count(pattern, plan="auto", symmetry_breaking=False)
        assert len(counting) == 2


# ----------------------------------------------------------------------
# Auto-vs-fixed result parity
# ----------------------------------------------------------------------


PARITY_GRAPHS = {
    "uniform": lambda: erdos_renyi(120, 0.08, seed=3),
    "skewed": lambda: power_law(200, gamma=2.1, d_min=3, seed=5),
    "star": lambda: star_graph(40),
    "hub-tail": hub_tail_graph,
}

PARITY_PATTERNS = {
    "clique:3": generate_clique(3),
    "chain:3": generate_chain(3),
    "cycle:4": generate_cycle(4),
    "star:3": generate_star(3),
}


class TestAutoFixedParity:
    @pytest.mark.parametrize("graph_name", sorted(PARITY_GRAPHS))
    @pytest.mark.parametrize("pattern_name", sorted(PARITY_PATTERNS))
    @pytest.mark.parametrize("edge_induced", [True, False])
    def test_counts_identical(self, graph_name, pattern_name, edge_induced):
        session = MiningSession(PARITY_GRAPHS[graph_name]())
        pattern = PARITY_PATTERNS[pattern_name]
        fixed = session.count(
            pattern, edge_induced=edge_induced, plan="fixed"
        )
        auto = session.count(pattern, edge_induced=edge_induced, plan="auto")
        assert auto == fixed

    @pytest.mark.parametrize("pattern_name", ["clique:3", "chain:3"])
    def test_match_multisets_identical(self, pattern_name):
        session = MiningSession(erdos_renyi(100, 0.08, seed=11))
        pattern = PARITY_PATTERNS[pattern_name]

        def collect(plan_mode):
            rows = []
            session.match(
                pattern,
                lambda m: rows.append(tuple(m.mapping)),
                plan=plan_mode,
            )
            return sorted(rows)

        assert collect("auto") == collect("fixed")

    def test_count_many_identical(self):
        session = MiningSession(erdos_renyi(150, 0.08, seed=7))
        patterns = list(PARITY_PATTERNS.values())
        fixed = session.count_many(patterns, plan="fixed")
        auto = session.count_many(patterns, plan="auto")
        assert list(auto) == list(fixed)

    def test_guarded_downgrade_parity(self, monkeypatch):
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        session = MiningSession(erdos_renyi(120, 0.1, seed=2))
        pattern = generate_clique(3)
        fixed = session.count(pattern, guard="downgrade", plan="fixed")
        auto = session.count(pattern, guard="downgrade", plan="auto")
        assert auto == fixed

    def test_last_query_plan_recorded_only_for_auto(self):
        session = MiningSession(erdos_renyi(120, 0.1, seed=2))
        pattern = generate_clique(3)
        session.count(pattern, plan="fixed")
        assert session.last_query_plan is None
        session.count(pattern, plan="auto")
        recorded = session.last_query_plan
        assert isinstance(recorded, planner.QueryPlan)
        assert recorded.engine in ("reference", "accel", "accel-batch")


# ----------------------------------------------------------------------
# ExecOptions spelling
# ----------------------------------------------------------------------


class TestPlanOptionSpelling:
    def test_plan_string_translates_to_planner_field(self):
        opts = ExecOptions().merged({"plan": "auto"})
        assert opts.planner == "auto"
        assert opts.plan is None  # the ExplorationPlan slot stays free

    def test_exploration_plan_object_still_accepted(self):
        session = MiningSession(erdos_renyi(60, 0.15, seed=4))
        pattern = generate_clique(3)
        plan = session.plan_for(pattern)
        opts = session.options(plan=plan)
        assert opts.plan is plan
        assert opts.planner == "fixed"

    def test_planner_session_default_via_constructor(self):
        session = MiningSession(erdos_renyi(60, 0.15, seed=4), plan="auto")
        assert session.defaults.planner == "auto"
        pattern = generate_clique(3)
        assert session.count(pattern) == session.count(pattern, plan="fixed")
        assert session.last_query_plan is not None
