"""Tests for Table 2-style dataset statistics."""

from repro.graph import from_edges, graph_stats, stats_table


class TestGraphStats:
    def test_basic_fields(self):
        g = from_edges([(0, 1), (0, 2), (0, 3)], name="star4")
        s = graph_stats(g)
        assert s.name == "star4"
        assert s.num_vertices == 4
        assert s.num_edges == 3
        assert s.max_degree == 3
        assert s.avg_degree == 1.5
        assert s.num_labels == 0

    def test_labeled(self):
        g = from_edges([(0, 1)], labels=[1, 2])
        assert graph_stats(g).num_labels == 2

    def test_row_shows_dash_for_unlabeled(self):
        g = from_edges([(0, 1)], name="x")
        assert "—" in graph_stats(g).row()

    def test_table_has_header_and_rows(self):
        g1 = from_edges([(0, 1)], name="a")
        g2 = from_edges([(0, 1), (1, 2)], name="b")
        table = stats_table([g1, g2])
        lines = table.splitlines()
        assert "|V(G)|" in lines[0]
        assert len(lines) == 4  # header + rule + 2 rows
        assert lines[2].startswith("a")
