"""Tests for execution guardrails: budgets, meters and admission guards.

Covers the :class:`repro.core.callbacks.Budget` spec and its armed
:class:`~repro.core.callbacks.BudgetMeter`, the bounded probe walk in
:mod:`repro.runtime.guards`, the session-level ``guard=`` admission
modes, and the acceptance scenario — a short deadline on a power-law
census returning a truncated partial through the frontier-batched
engine (asserted structurally via engine dispatch, never via timing).
"""

import time

import pytest

from repro.core.callbacks import Budget, BudgetMeter
from repro.core.session import ExecOptions, MiningSession
from repro.errors import (
    BudgetExceededError,
    PartialResult,
    QueryRefusedError,
)
from repro.graph.generators import erdos_renyi, power_law, star_graph
from repro.pattern.generators import generate_clique
from repro.pattern.pattern import Pattern
from repro.runtime import guards


class TestBudgetSpec:
    def test_defaults_are_unlimited(self):
        b = Budget()
        assert b.deadline is None and b.max_matches is None
        assert b.max_frontier_rows is None
        assert b.max_expanded_partials is None

    @pytest.mark.parametrize(
        "field",
        ["deadline", "max_matches", "max_frontier_rows",
         "max_expanded_partials"],
    )
    def test_limits_must_be_positive(self, field):
        with pytest.raises(ValueError, match="must be positive"):
            Budget(**{field: 0})

    def test_meter_arms_a_fresh_clock_per_run(self):
        b = Budget(deadline=60.0)
        first = b.meter()
        time.sleep(0.002)
        second = b.meter()
        assert second.deadline_at > first.deadline_at


class TestBudgetMeter:
    def test_match_cap_trips_with_partial(self):
        meter = Budget(max_matches=10).meter()
        meter.check(9)  # below the cap: no trip
        meter.levels_completed = 4
        with pytest.raises(BudgetExceededError) as info:
            meter.check(10)
        partial = info.value.partial
        assert isinstance(partial, PartialResult)
        assert partial == 10
        assert partial.levels_completed == 4
        assert "cap 10" in partial.reason

    def test_frontier_row_cap_trips_even_with_zero_matches(self):
        meter = Budget(max_frontier_rows=100).meter()
        meter.charge_rows(64)
        meter.check(0)
        meter.charge_rows(64)
        with pytest.raises(BudgetExceededError) as info:
            meter.check(0)
        assert info.value.partial == 0
        assert "frontier rows" in info.value.partial.reason

    def test_expanded_partial_cap_trips(self):
        meter = Budget(max_expanded_partials=1000).meter()
        meter.charge_partials(1000)
        with pytest.raises(BudgetExceededError, match="expanded partials"):
            meter.check(0)

    def test_elapsed_deadline_trips(self):
        meter = Budget(deadline=1e-9).meter()
        time.sleep(0.001)
        with pytest.raises(BudgetExceededError, match="deadline"):
            meter.check(0)

    def test_unarmed_limits_never_trip(self):
        meter = Budget(deadline=3600.0).meter()
        meter.charge_rows(10**9)
        meter.charge_partials(10**9)
        meter.check(10**9)


class TestEstimateCost:
    def test_probe_is_bounded(self):
        g = erdos_renyi(2000, 0.01, seed=3)
        est = guards.estimate_cost(g, generate_clique(3))
        assert est.sampled <= guards.PROBE_SAMPLE
        assert est.frontier_size <= 2000
        assert est.predicted_partials > 0

    def test_probe_distinguishes_power_law_from_uniform(self):
        # Same vertex count and matched average degree: on the skewed
        # graph the hub prefix must be detected and its worst-case
        # expansion must dwarf anything the uniform frontier shows.
        skewed = power_law(1500, gamma=2.1, d_min=4, seed=7)
        avg_degree = 2 * skewed.num_edges / skewed.num_vertices
        uniform = erdos_renyi(1500, avg_degree / 1499, seed=7)
        pattern = generate_clique(4)
        est_skewed = guards.estimate_cost(skewed, pattern)
        est_uniform = guards.estimate_cost(uniform, pattern)
        assert est_skewed.hub_count > 0
        assert est_uniform.hub_count == 0
        assert est_skewed.max_expansion > est_uniform.max_expansion

    def test_trivial_pattern_short_circuits(self):
        est = guards.estimate_cost(star_graph(5), Pattern(num_vertices=1))
        assert est.sampled == 0
        assert est.predicted_partials == est.frontier_size

    def test_threshold_resolved_at_call_time(self, monkeypatch):
        g = erdos_renyi(60, 0.2, seed=1)
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        est = guards.estimate_cost(g, generate_clique(3))
        assert est.threshold == 1.0
        assert est.explosive

    def test_as_dict_reports_verdict(self):
        g = erdos_renyi(60, 0.2, seed=1)
        d = guards.estimate_cost(g, generate_clique(3)).as_dict()
        assert set(d) >= {"frontier_size", "predicted_partials",
                          "threshold", "explosive", "hub_count"}


class TestAdmissionModes:
    @pytest.fixture()
    def session(self):
        return MiningSession(erdos_renyi(80, 0.2, seed=9))

    def test_invalid_guard_value_rejected(self, session):
        with pytest.raises(ValueError, match="guard must be one of"):
            session.count(generate_clique(3), guard="maybe")
        with pytest.raises(ValueError, match="on_budget must be one of"):
            session.count(generate_clique(3), on_budget="ignore")

    def test_guard_off_is_inert(self, session, monkeypatch):
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        expected = session.count(generate_clique(3))
        assert session.count(generate_clique(3), guard="off") == expected

    def test_refuse_raises_up_front(self, session, monkeypatch):
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        with pytest.raises(QueryRefusedError) as info:
            session.count(generate_clique(3), guard="refuse")
        err = info.value
        assert err.estimate is not None and err.estimate.explosive
        assert err.partial == 0
        assert "refused" in str(err)

    def test_downgrade_match_still_returns_exact_count(
        self, session, monkeypatch
    ):
        # Enumeration (a callback) can only be downgraded, never estimated.
        expected = session.count(generate_clique(3))
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        seen = []
        got = session.match(
            generate_clique(3), seen.append, guard="downgrade"
        )
        assert got == expected == len(seen)

    def test_downgrade_escalates_deep_explosions_to_approx(
        self, session, monkeypatch
    ):
        # Count-only queries predicted far past the threshold answer from
        # the sampling tier (PR 10); on this tiny frontier the estimator
        # degenerates to the exact census, so the value is still exact.
        from repro.mining.sampling import ApproxCount

        expected = session.count(generate_clique(3))
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        got = session.count(generate_clique(3), guard="downgrade")
        assert isinstance(got, ApproxCount)
        assert got.requested_rel_err == guards.DOWNGRADE_APPROX_REL_ERR
        assert int(got) == expected

    def test_downgrade_tightens_frontier_chunk(self, monkeypatch):
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        est = guards.estimate_cost(erdos_renyi(80, 0.2, seed=9),
                                   generate_clique(3))
        opts = guards.admit(est, ExecOptions(guard="downgrade"))
        assert opts.frontier_chunk == guards.DOWNGRADE_FRONTIER_CHUNK
        kept = guards.admit(
            est, ExecOptions(guard="downgrade", frontier_chunk=64)
        )
        assert kept.frontier_chunk == 64  # never loosened

    def test_cap_workers_only_when_explosive(self, monkeypatch):
        g = erdos_renyi(80, 0.2, seed=9)
        benign = guards.estimate_cost(g, generate_clique(3))
        assert guards.cap_workers(benign, 8) == 8
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        explosive = guards.estimate_cost(g, generate_clique(3))
        assert guards.cap_workers(explosive, 8) == guards.DOWNGRADE_MAX_WORKERS
        assert guards.cap_workers(None, 8) == 8


class TestBudgetedVerbs:
    def test_reference_engine_trips_match_cap(self):
        g = erdos_renyi(60, 0.3, seed=4)
        session = MiningSession(g)
        full = session.count(generate_clique(3), engine="reference")
        assert full > 5
        result = session.count(
            generate_clique(3),
            engine="reference",
            budget=Budget(max_matches=5),
            on_budget="partial",
        )
        assert isinstance(result, PartialResult)
        assert result.truncated
        # The reference engine polls per start task, so the run stops at
        # the first poll after the cap — cooperative overshoot is
        # bounded by one task's matches, never the rest of the graph.
        assert 5 <= result < full
        assert "cap 5" in result.reason

    def test_on_budget_raise_is_the_default(self):
        g = erdos_renyi(60, 0.3, seed=4)
        with pytest.raises(BudgetExceededError):
            MiningSession(g).count(
                generate_clique(3),
                engine="reference",
                budget=Budget(max_matches=1),
            )

    def test_batched_engine_trips_frontier_row_cap(self):
        g = erdos_renyi(200, 0.1, seed=5)
        result = MiningSession(g).count(
            generate_clique(3),
            engine="accel-batch",
            budget=Budget(max_frontier_rows=10),
            on_budget="partial",
        )
        assert isinstance(result, PartialResult)
        assert result.truncated
        assert "frontier rows" in result.reason

    def test_deadline_on_power_law_census_via_batched_engine(self):
        """Acceptance: a 50ms deadline on a power-law census returns a
        truncated partial through the BATCHED engine.

        The engine claim is structural — ``_prepare`` must dispatch this
        exact call shape to ``accel-batch`` — and the truncation is
        forced by an already-elapsed meter, never by racing wall-clock.
        """
        g = power_law(3000, gamma=2.0, d_min=6, seed=11)
        session = MiningSession(g)
        pattern = generate_clique(3)
        budget = Budget(deadline=0.05)
        opts = session.defaults.merged(
            {"engine": "auto", "budget": budget, "on_budget": "partial"}
        )
        _, _, selected = session._prepare(pattern, opts)
        assert selected == "accel-batch"  # budgets do not demote dispatch

        meter = budget.meter()
        meter.deadline_at = time.perf_counter() - 1.0  # deadline elapsed
        result = session._run_match(pattern, None, opts, meter=meter)
        assert isinstance(result, PartialResult)
        assert result.truncated
        assert "deadline" in result.reason
        # Sanity: the same call with a roomy deadline completes exactly.
        full = session.count(pattern, engine="auto")
        roomy = session.count(
            pattern,
            engine="auto",
            budget=Budget(deadline=3600.0),
            on_budget="partial",
        )
        assert roomy == full
        assert not getattr(roomy, "truncated", False)
