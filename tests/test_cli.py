"""Tests for the repro-mine command-line interface."""

from __future__ import annotations

import io

import pytest

from repro.cli import build_parser, main
from repro.cli.parsing import parse_pattern_spec
from repro.core import count
from repro.errors import PatternFormatError
from repro.graph import mico_like
from repro.pattern import (
    Pattern,
    are_isomorphic,
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
)
from repro.pattern.evaluation import pattern_p2, pattern_p7


def run_cli(argv: list[str]) -> tuple[int, str]:
    """Invoke a subcommand, capturing its output stream."""
    parser = build_parser()
    args = parser.parse_args(argv)
    out = io.StringIO()
    code = args.func(args, out)
    return code, out.getvalue()


MICO = ["--dataset", "mico", "--scale", "0.05"]


# ----------------------------------------------------------------------
# Pattern spec parsing
# ----------------------------------------------------------------------


class TestPatternSpec:
    @pytest.mark.parametrize(
        "spec,expected",
        [
            ("clique:3", generate_clique(3)),
            ("star:4", generate_star(4)),
            ("chain:4", generate_chain(4)),
            ("cycle:5", generate_cycle(5)),
            ("edges:0-1,1-2,2-0", generate_clique(3)),
        ],
    )
    def test_generated_specs(self, spec, expected):
        assert are_isomorphic(parse_pattern_spec(spec), expected)

    def test_figure9_specs(self):
        assert are_isomorphic(parse_pattern_spec("p2"), pattern_p2())
        p7 = parse_pattern_spec("p7")
        assert p7.num_anti_edges == pattern_p7().num_anti_edges

    def test_file_spec(self, tmp_path):
        from repro.pattern.io import save_patterns

        path = tmp_path / "pat.txt"
        save_patterns([generate_clique(3)], path)
        assert are_isomorphic(
            parse_pattern_spec(f"file:{path}"), generate_clique(3)
        )

    @pytest.mark.parametrize(
        "bad",
        ["", "clique", "clique:x", "edges:0", "edges:a-b", "nope:3", "p99"],
    )
    def test_bad_specs_rejected(self, bad):
        with pytest.raises(PatternFormatError):
            parse_pattern_spec(bad)


# ----------------------------------------------------------------------
# Subcommands
# ----------------------------------------------------------------------


class TestSubcommands:
    def test_stats(self):
        code, out = run_cli(["stats", *MICO])
        assert code == 0
        assert "mico-like" in out

    def test_stats_requires_source(self):
        with pytest.raises(SystemExit):
            run_cli(["stats"])

    def test_count_matches_library(self):
        code, out = run_cli(["count", *MICO, "--pattern", "clique:3"])
        assert code == 0
        expected = count(mico_like(0.05), generate_clique(3))
        assert f"matches: {expected}" in out

    def test_count_profile_counters(self):
        code, out = run_cli(
            ["count", *MICO, "--pattern", "clique:3", "--profile"]
        )
        assert code == 0
        assert "canonicality_checks: 0" in out
        assert "isomorphism_checks: 0" in out

    def test_count_vertex_induced_differs(self):
        _, edge_out = run_cli(["count", *MICO, "--pattern", "chain:3"])
        _, vi_out = run_cli(
            ["count", *MICO, "--pattern", "chain:3", "--vertex-induced"]
        )
        edge_n = int(edge_out.split("matches: ")[1].split()[0])
        vi_n = int(vi_out.split("matches: ")[1].split()[0])
        assert vi_n <= edge_n

    def test_match_limit_and_total(self):
        code, out = run_cli(
            ["match", *MICO, "--pattern", "clique:3", "--limit", "2"]
        )
        assert code == 0
        lines = [l for l in out.splitlines() if l and l[0].isdigit()]
        assert len(lines) == 2
        assert "(printed first 2)" in out

    def test_match_output_file(self, tmp_path):
        path = tmp_path / "matches.txt"
        code, out = run_cli(
            ["match", *MICO, "--pattern", "clique:3", "--output", str(path)]
        )
        assert code == 0
        total = int(out.split("matches: ")[1].split()[0])
        assert len(path.read_text().splitlines()) == total

    def test_exists_exit_codes(self):
        code, out = run_cli(["exists", *MICO, "--pattern", "clique:3"])
        assert code == 0 and "found" in out
        code, out = run_cli(["exists", *MICO, "--pattern", "clique:12"])
        assert code == 1 and "not found" in out

    def test_motifs(self):
        code, out = run_cli(["motifs", *MICO, "--size", "3"])
        assert code == 0
        assert "census" in out

    def test_cliques_modes(self):
        code, out = run_cli(["cliques", *MICO, "-k", "3"])
        assert code == 0 and "3-cliques:" in out
        code, out = run_cli(["cliques", *MICO, "-k", "3", "--maximal"])
        assert code == 0 and "maximal" in out
        code, out = run_cli(
            ["cliques", *MICO, "-k", "3", "--list", "--limit", "3"]
        )
        assert code == 0

    def test_cliques_existence_negative(self):
        code, _ = run_cli(["cliques", *MICO, "-k", "12", "--existence"])
        assert code == 1

    def test_fsm_on_labeled_dataset(self):
        code, out = run_cli(
            ["fsm", *MICO, "--edges", "1", "--threshold", "1", "--verbose"]
        )
        assert code == 0
        assert "frequent 1-edge patterns" in out

    def test_fsm_rejects_unlabeled(self):
        with pytest.raises(SystemExit):
            run_cli(
                ["fsm", "--dataset", "orkut", "--scale", "0.05",
                 "--edges", "1", "--threshold", "1"]
            )

    def test_approx(self):
        code, out = run_cli(
            ["approx", *MICO, "--pattern", "clique:3",
             "--rel-err", "0.1", "--sample-seed", "7"]
        )
        assert code == 0
        assert "estimate:" in out and "CI [" in out and "stop:" in out

    def test_approx_with_budget(self):
        code, out = run_cli(
            ["approx", *MICO, "--pattern", "clique:3",
             "--max-samples", "200", "--sample-seed", "7"]
        )
        assert code == 0
        assert "estimate:" in out

    def test_count_approx(self):
        code, out = run_cli(
            ["count", *MICO, "--pattern", "clique:3",
             "--approx", "0.1", "--sample-seed", "7"]
        )
        assert code == 0
        assert "estimate:" in out and "CI [" in out

    def test_plan_shows_anti_vertex_checks(self):
        code, out = run_cli(["plan", "--pattern", "p7"])
        assert code == 0
        assert "anti-vertex checks" in out

    def test_generate_roundtrip(self, tmp_path):
        path = tmp_path / "g.edges"
        code, out = run_cli(
            ["generate", *MICO, "--output", str(path)]
        )
        assert code == 0
        code, out = run_cli(["stats", "--graph", str(path)])
        assert code == 0

    def test_generate_labels_roundtrip(self, tmp_path):
        epath, lpath = tmp_path / "g.edges", tmp_path / "g.labels"
        code, _ = run_cli(
            ["generate", *MICO, "--output", str(epath),
             "--label-output", str(lpath)]
        )
        assert code == 0
        code, out = run_cli(
            ["count", "--graph", str(epath), "--labels", str(lpath),
             "--pattern", "clique:3"]
        )
        assert code == 0

    def test_seed_override_changes_graph(self):
        _, a = run_cli(["stats", *MICO, "--seed", "1"])
        _, b = run_cli(["stats", *MICO, "--seed", "2"])
        assert a != b


# ----------------------------------------------------------------------
# main() wiring
# ----------------------------------------------------------------------


class TestMain:
    def test_main_returns_command_exit_code(self, capsys):
        assert main(["stats", *MICO]) == 0
        assert "mico-like" in capsys.readouterr().out

    def test_main_requires_subcommand(self):
        with pytest.raises(SystemExit):
            main([])

    def test_version_flag(self, capsys):
        with pytest.raises(SystemExit) as exc:
            main(["--version"])
        assert exc.value.code == 0
        assert "repro-mine" in capsys.readouterr().out


class TestNpzIntegration:
    def test_generate_and_load_npz(self, tmp_path):
        path = tmp_path / "g.npz"
        code, out = run_cli(["generate", *MICO, "--output", str(path)])
        assert code == 0
        code, out = run_cli(
            ["count", "--graph", str(path), "--pattern", "clique:3"]
        )
        assert code == 0
        expected = count(mico_like(0.05), generate_clique(3))
        assert f"matches: {expected}" in out

    def test_npz_embeds_labels(self, tmp_path):
        path = tmp_path / "g.npz"
        run_cli(["generate", *MICO, "--output", str(path)])
        code, out = run_cli(["stats", "--graph", str(path)])
        assert code == 0

    def test_npz_with_labels_flag_rejected(self, tmp_path):
        path = tmp_path / "g.npz"
        run_cli(["generate", *MICO, "--output", str(path)])
        with pytest.raises(SystemExit):
            run_cli(
                ["stats", "--graph", str(path), "--labels", "whatever.txt"]
            )


class TestGuardFlags:
    """--deadline / --max-matches / --guard on count, motifs and fsm."""

    def test_roomy_deadline_is_a_no_op(self):
        expected = count(mico_like(0.05), generate_clique(3))
        code, out = run_cli(
            ["count", *MICO, "--pattern", "clique:3", "--deadline", "3600"]
        )
        assert code == 0
        assert f"matches: {expected}" in out
        assert "truncated" not in out

    def test_elapsed_deadline_reports_truncated(self):
        code, out = run_cli(
            ["count", *MICO, "--pattern", "clique:4",
             "--deadline", "0.000001"]
        )
        assert code == 0
        assert "truncated: deadline" in out

    def test_max_matches_reports_truncated(self):
        expected = count(mico_like(0.05), generate_clique(3))
        code, out = run_cli(
            ["count", *MICO, "--pattern", "clique:3", "--engine",
             "reference", "--max-matches", "1"]
        )
        assert code == 0
        assert "truncated: matches" in out
        reported = int(out.splitlines()[0].split()[-1])
        assert reported < expected

    def test_refused_query_exits_nonzero(self, monkeypatch):
        from repro.runtime import guards

        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        code, out = run_cli(
            ["count", *MICO, "--pattern", "clique:3", "--guard", "refuse"]
        )
        assert code == 3
        assert out.startswith("refused:")
        assert "matches:" not in out

    def test_downgraded_query_still_exact(self, monkeypatch):
        from repro.runtime import guards

        expected = count(mico_like(0.05), generate_clique(3))
        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        code, out = run_cli(
            ["count", *MICO, "--pattern", "clique:3", "--guard", "downgrade"]
        )
        assert code == 0
        assert f"matches: {expected}" in out

    def test_max_matches_with_processes_rejected(self):
        with pytest.raises(SystemExit, match="max-matches"):
            run_cli(
                ["count", *MICO, "--pattern", "clique:3",
                 "--processes", "2", "--max-matches", "5"]
            )

    def test_deadline_with_static_schedule_rejected(self):
        with pytest.raises(SystemExit, match="dynamic"):
            run_cli(
                ["count", *MICO, "--pattern", "clique:3", "--processes",
                 "2", "--schedule", "static", "--deadline", "1"]
            )

    def test_motifs_refused_exits_nonzero(self, monkeypatch):
        from repro.runtime import guards

        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        code, out = run_cli(["motifs", *MICO, "--size", "3",
                             "--guard", "refuse"])
        assert code == 3
        assert "refused:" in out

    def test_motifs_elapsed_deadline_reports_truncated(self):
        code, out = run_cli(
            ["motifs", *MICO, "--size", "3", "--deadline", "0.000001"]
        )
        assert code == 0
        assert "truncated: deadline" in out

    def test_fsm_refused_exits_nonzero(self, monkeypatch):
        from repro.runtime import guards

        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        code, out = run_cli(
            ["fsm", *MICO, "--threshold", "5", "--guard", "refuse"]
        )
        assert code == 3
        assert "refused:" in out


class TestExplainAndPlanFlags:
    """The explain verb and the --plan knob on count."""

    def test_explain_prints_estimate_and_plan(self):
        code, out = run_cli(["explain", *MICO, "--pattern", "clique:3"])
        assert code == 0
        assert "pattern: clique:3" in out
        assert "frontier:" in out
        assert "level-1 expansion:" in out
        assert "predicted partials:" in out
        assert "explosive: no" in out
        assert "plan: engine=" in out
        assert "schedule=" in out
        # Every choice carries at least one reason line.
        assert any(line.startswith("  - ") for line in out.splitlines())

    def test_explain_runs_nothing(self):
        code, out = run_cli(["explain", *MICO, "--pattern", "clique:3"])
        assert code == 0
        assert "matches:" not in out
        assert "elapsed:" not in out

    def test_explain_respects_pinned_engine(self):
        code, out = run_cli(
            ["explain", *MICO, "--pattern", "clique:3",
             "--engine", "reference"]
        )
        assert code == 0
        assert "plan: engine=reference" in out
        assert "pinned" in out

    def test_explain_flags_explosive_queries(self, monkeypatch):
        from repro.runtime import guards

        monkeypatch.setattr(guards, "EXPLOSIVE_PARTIALS", 1.0)
        code, out = run_cli(["explain", *MICO, "--pattern", "clique:3"])
        assert code == 0  # explain never refuses; it reports
        assert "explosive: yes" in out

    def test_count_plan_auto_matches_fixed(self):
        _, fixed = run_cli(
            ["count", *MICO, "--pattern", "clique:3", "--plan", "fixed"]
        )
        code, auto = run_cli(
            ["count", *MICO, "--pattern", "clique:3", "--plan", "auto"]
        )
        assert code == 0
        assert fixed.splitlines()[0] == auto.splitlines()[0]
