"""Tests for symmetry breaking (partial orders) and orbits."""

from itertools import permutations

from repro.core import break_symmetries, conditions_hold, orbit_partition
from repro.pattern import (
    Pattern,
    automorphisms,
    generate_chain,
    generate_clique,
    generate_cycle,
    generate_star,
    pattern_p7,
)


def representative_count(p: Pattern, conditions) -> int:
    """Of all |V|! vertex orderings, how many satisfy the partial order
    *per automorphism class*: used to verify exactly-one-representative."""
    n = p.num_vertices
    autos = automorphisms(p)
    total_orderings = 0
    for perm in permutations(range(n)):
        # perm assigns distinct 'data ids' = positions to vertices
        mapping = {u: perm[u] for u in range(n)}
        if conditions_hold(conditions, mapping):
            total_orderings += 1
    # every automorphism class of orderings should contribute exactly one
    import math

    return total_orderings, math.factorial(n) // len(autos)


class TestBreakSymmetries:
    def test_unique_representative_for_known_patterns(self):
        for p in [
            generate_clique(3),
            generate_clique(4),
            generate_star(4),
            generate_chain(4),
            generate_cycle(4),
            generate_cycle(5),
        ]:
            conditions = break_symmetries(p)
            got, expected = representative_count(p, conditions)
            assert got == expected, repr(p)

    def test_asymmetric_pattern_needs_no_conditions(self):
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3), (3, 4)])
        p.add_edge(1, 3)  # make it asymmetric
        if len(automorphisms(p)) == 1:
            assert break_symmetries(p) == []

    def test_clique_total_order(self):
        conditions = break_symmetries(generate_clique(4))
        # A clique's partial order must be a total order: C(4,2) relations
        # are implied; the GK chain gives 3 + 2 + 1 = 6 direct pairs.
        assert len(conditions) == 6

    def test_labels_reduce_conditions(self):
        p = generate_clique(3)
        plain = break_symmetries(p)
        p.set_label(0, 1)
        p.set_label(1, 2)
        p.set_label(2, 3)
        labeled = break_symmetries(p)
        assert len(labeled) < len(plain)
        assert labeled == []

    def test_anti_vertex_conditions_excluded(self):
        conditions = break_symmetries(pattern_p7())
        anti = 3  # p7's anti-vertex id
        assert all(anti not in pair for pair in conditions)

    def test_paper_example_square_with_diagonals_core(self):
        # Figure 6's pattern: 4-cycle u1-u2-u3-u4 with chords? The paper's
        # partial order for its example is u1 < u3 and u2 < u4 on a square.
        p = generate_cycle(4)
        conditions = break_symmetries(p)
        got, expected = representative_count(p, conditions)
        assert got == expected


class TestConditionsHold:
    def test_holds(self):
        assert conditions_hold([(0, 1)], {0: 3, 1: 5})

    def test_violated(self):
        assert not conditions_hold([(0, 1)], {0: 5, 1: 3})

    def test_list_mapping(self):
        assert conditions_hold([(0, 2)], [1, 9, 4])


class TestOrbits:
    def test_clique_single_orbit(self):
        assert orbit_partition(generate_clique(4)) == [[0, 1, 2, 3]]

    def test_star_orbits(self):
        assert orbit_partition(generate_star(4)) == [[0], [1, 2, 3]]

    def test_chain_orbits(self):
        assert orbit_partition(generate_chain(4)) == [[0, 3], [1, 2]]

    def test_labels_split_orbits(self):
        p = generate_clique(3)
        p.set_label(0, 9)
        assert orbit_partition(p) == [[0], [1, 2]]
