"""Legacy approximate-API shims: frozen signatures, forwarding, warnings.

PR 10 retired the schedule-bound estimator in ``mining/approximate.py``
in favor of the session-integrated sampling tier
(:mod:`repro.mining.sampling`).  The free functions survive as
deprecation shims; these tests pin what "shim" means:

* **signature-frozen** — parameter names, order and defaults exactly as
  the legacy API shipped them (the ``TestLegacyShims`` idiom);
* **warning** — every public call emits :class:`DeprecationWarning`
  exactly once;
* **forwarding** — results come from the new tier (``count(approx=...)``)
  repackaged into the frozen :class:`ApproxResult` shape, and legacy
  error contracts (``ValueError`` on bad trials / zero-signal pilots)
  still hold.
"""

from __future__ import annotations

import inspect
import warnings

import pytest

from repro.core import MiningSession, count
from repro.graph import erdos_renyi, from_edges
from repro.mining import (
    ApproxResult,
    approximate_count,
    approximate_motif_counts,
    approximate_triangle_count,
    motif_counts,
    trials_for_error,
)
from repro.mining import approximate as approximate_module
from repro.pattern import generate_clique


@pytest.fixture(scope="module")
def sample_graph():
    return erdos_renyi(60, 0.15, seed=5)


LEGACY_SIGNATURES = {
    "approximate_count": (
        ("graph", inspect.Parameter.empty),
        ("pattern", inspect.Parameter.empty),
        ("trials", 10_000),
        ("seed", None),
        ("edge_induced", True),
    ),
    "approximate_motif_counts": (
        ("graph", inspect.Parameter.empty),
        ("size", inspect.Parameter.empty),
        ("trials", 10_000),
        ("seed", None),
    ),
    "approximate_triangle_count": (
        ("graph", inspect.Parameter.empty),
        ("trials", 10_000),
        ("seed", None),
    ),
    "trials_for_error": (
        ("graph", inspect.Parameter.empty),
        ("pattern", inspect.Parameter.empty),
        ("target_relative_error", inspect.Parameter.empty),
        ("pilot_trials", 2_000),
        ("seed", None),
        ("edge_induced", True),
    ),
}


class TestLegacyShims:
    @pytest.mark.parametrize("name", sorted(LEGACY_SIGNATURES))
    def test_signatures_frozen(self, name):
        fn = getattr(approximate_module, name)
        got = tuple(
            (p.name, p.default)
            for p in inspect.signature(fn).parameters.values()
        )
        assert got == LEGACY_SIGNATURES[name]

    def test_result_shape_frozen(self):
        fields = tuple(ApproxResult.__dataclass_fields__)
        assert fields == ("estimate", "trials", "stddev", "ci95", "hit_rate")
        r = ApproxResult(
            estimate=0.0, trials=10, stddev=0.0, ci95=0.0, hit_rate=0.0
        )
        assert r.relative_ci == 0.0
        assert r.within(0.0)

    @pytest.mark.parametrize("name", sorted(LEGACY_SIGNATURES))
    def test_still_exported_from_mining(self, name):
        import repro.mining as mining

        assert getattr(mining, name) is getattr(approximate_module, name)


class TestDeprecationWarnings:
    def test_approximate_count_warns_once(self, sample_graph):
        with warnings.catch_warnings(record=True) as caught:
            warnings.simplefilter("always")
            approximate_count(
                sample_graph, generate_clique(3), trials=200, seed=1
            )
        deprecations = [
            w for w in caught if issubclass(w.category, DeprecationWarning)
        ]
        assert len(deprecations) == 1
        assert "approximate_count" in str(deprecations[0].message)

    def test_every_shim_warns(self, sample_graph):
        with pytest.warns(DeprecationWarning):
            approximate_triangle_count(sample_graph, trials=200, seed=1)
        with pytest.warns(DeprecationWarning):
            approximate_motif_counts(sample_graph, 3, trials=200, seed=1)
        with pytest.warns(DeprecationWarning):
            trials_for_error(
                sample_graph, generate_clique(3), 0.5, pilot_trials=200, seed=1
            )


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestForwarding:
    """The shims answer from the sampling tier, in the legacy shape."""

    def test_matches_new_tier(self, sample_graph):
        session = MiningSession(sample_graph)
        legacy = approximate_count(
            session, generate_clique(3), trials=500, seed=3
        )
        direct = session.count(
            generate_clique(3), approx=0.01, max_samples=500, seed=3
        )
        assert legacy.estimate == direct.estimate
        assert legacy.trials == direct.samples
        assert legacy.hit_rate == direct.hit_rate

    def test_estimate_within_interval(self, sample_graph):
        exact = count(sample_graph, generate_clique(3))
        r = approximate_triangle_count(sample_graph, trials=10_000, seed=1)
        assert r.within(exact, slack=3.0)

    def test_motif_census_forwards(self, sample_graph):
        exact = motif_counts(sample_graph, 3)
        approx = approximate_motif_counts(
            sample_graph, 3, trials=10_000, seed=9
        )
        assert len(approx) == len(exact) == 2
        exact_by_edges = {p.num_edges: c for p, c in exact.items()}
        for motif, r in approx.items():
            assert isinstance(r, ApproxResult)
            truth = exact_by_edges[motif.num_edges]
            assert abs(r.estimate - truth) / max(truth, 1) < 0.2

    def test_deterministic_with_seed(self, sample_graph):
        a = approximate_triangle_count(sample_graph, trials=1_000, seed=42)
        b = approximate_triangle_count(sample_graph, trials=1_000, seed=42)
        assert a == b

    def test_session_and_graph_agree(self, sample_graph):
        p = generate_clique(3)
        via_graph = approximate_count(sample_graph, p, trials=500, seed=3)
        via_session = approximate_count(
            MiningSession(sample_graph), p, trials=500, seed=3
        )
        assert via_session.estimate == via_graph.estimate


@pytest.mark.filterwarnings("ignore::DeprecationWarning")
class TestLegacyErrorContracts:
    def test_invalid_trials_rejected(self, sample_graph):
        with pytest.raises(ValueError):
            approximate_count(sample_graph, generate_clique(3), trials=0)

    def test_empty_graph(self):
        g = from_edges([], num_vertices=0)
        r = approximate_triangle_count(g, trials=100, seed=0)
        assert r.estimate == 0.0
        assert r.trials == 100

    def test_zero_matches_estimates_zero(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])  # a path: no triangles
        r = approximate_triangle_count(g, trials=2_000, seed=1)
        assert r.estimate == 0.0
        assert r.hit_rate == 0.0

    def test_zero_signal_pilot_rejected(self):
        g = from_edges([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            trials_for_error(g, generate_clique(3), 0.1, pilot_trials=200, seed=1)

    def test_invalid_target_rejected(self, sample_graph):
        with pytest.raises(ValueError):
            trials_for_error(sample_graph, generate_clique(3), 0.0)

    def test_exact_pilot_short_circuits(self, sample_graph):
        # A pilot covering the whole frontier is already error-free; the
        # profile returns the pilot size instead of dividing by zero.
        needed = trials_for_error(
            sample_graph,
            generate_clique(3),
            0.01,
            pilot_trials=10 * sample_graph.num_vertices,
            seed=1,
        )
        assert needed == 10 * sample_graph.num_vertices
