"""Tests for ASAP-style approximate pattern counting."""

from __future__ import annotations

import pytest

from repro.core import count
from repro.graph import erdos_renyi, from_edges, with_random_labels
from repro.mining import (
    ApproxResult,
    approximate_count,
    approximate_motif_counts,
    approximate_triangle_count,
    motif_counts,
    trials_for_error,
)
from repro.pattern import Pattern, generate_chain, generate_clique, generate_star


@pytest.fixture(scope="module")
def sample_graph():
    return erdos_renyi(60, 0.15, seed=5)


class TestEstimatorAccuracy:
    def test_triangles_within_confidence_interval(self, sample_graph):
        exact = count(sample_graph, generate_clique(3))
        r = approximate_triangle_count(sample_graph, trials=30_000, seed=1)
        assert r.within(exact, slack=3.0)
        assert r.relative_ci < 0.1

    @pytest.mark.parametrize(
        "pattern_fn",
        [lambda: generate_chain(3), lambda: generate_star(4),
         lambda: Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)])],
    )
    def test_other_patterns_converge(self, sample_graph, pattern_fn):
        p = pattern_fn()
        exact = count(sample_graph, p)
        r = approximate_count(sample_graph, p, trials=40_000, seed=7)
        assert exact > 0
        assert abs(r.estimate - exact) / exact < 0.15

    def test_vertex_induced_mode(self, sample_graph):
        chain = generate_chain(3)
        exact = count(sample_graph, chain, edge_induced=False)
        r = approximate_count(
            sample_graph, chain, trials=40_000, seed=11, edge_induced=False
        )
        assert abs(r.estimate - exact) / exact < 0.15

    def test_labeled_pattern(self):
        g = with_random_labels(erdos_renyi(50, 0.2, seed=2), 2, seed=3)
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 0)
        p.set_label(1, 1)
        exact = count(g, p)
        r = approximate_count(g, p, trials=60_000, seed=5)
        assert exact > 0
        assert abs(r.estimate - exact) / exact < 0.2

    def test_motif_census_estimates(self, sample_graph):
        exact = motif_counts(sample_graph, 3)
        approx = approximate_motif_counts(sample_graph, 3, trials=30_000, seed=9)
        assert len(approx) == len(exact) == 2
        exact_by_edges = {p.num_edges: c for p, c in exact.items()}
        for motif, r in approx.items():
            truth = exact_by_edges[motif.num_edges]
            assert abs(r.estimate - truth) / max(truth, 1) < 0.2


class TestEstimatorBehaviour:
    def test_zero_matches_estimates_zero(self):
        g = from_edges([(0, 1), (1, 2), (2, 3)])  # a path: no triangles
        r = approximate_triangle_count(g, trials=2_000, seed=1)
        assert r.estimate == 0.0
        assert r.ci95 == 0.0
        assert r.hit_rate == 0.0

    def test_deterministic_with_seed(self, sample_graph):
        a = approximate_triangle_count(sample_graph, trials=1_000, seed=42)
        b = approximate_triangle_count(sample_graph, trials=1_000, seed=42)
        assert a == b

    def test_different_seeds_differ(self, sample_graph):
        a = approximate_triangle_count(sample_graph, trials=1_000, seed=1)
        b = approximate_triangle_count(sample_graph, trials=1_000, seed=2)
        assert a.estimate != b.estimate

    def test_more_trials_tighter_interval(self, sample_graph):
        small = approximate_triangle_count(sample_graph, trials=1_000, seed=3)
        big = approximate_triangle_count(sample_graph, trials=50_000, seed=3)
        assert big.ci95 < small.ci95

    def test_empty_graph(self):
        g = from_edges([], num_vertices=0)
        r = approximate_triangle_count(g, trials=100, seed=0)
        assert r.estimate == 0.0

    def test_invalid_trials_rejected(self, sample_graph):
        with pytest.raises(ValueError):
            approximate_count(sample_graph, generate_clique(3), trials=0)

    def test_relative_ci_of_zero_estimate(self):
        r = ApproxResult(estimate=0.0, trials=10, stddev=0.0, ci95=0.0, hit_rate=0.0)
        assert r.relative_ci == 0.0


class TestErrorLatencyProfile:
    def test_tighter_error_needs_more_trials(self, sample_graph):
        p = generate_clique(3)
        loose = trials_for_error(sample_graph, p, 0.5, pilot_trials=500, seed=1)
        tight = trials_for_error(sample_graph, p, 0.005, pilot_trials=500, seed=1)
        assert tight > loose

    def test_profile_prediction_holds(self, sample_graph):
        """Running the predicted trial count achieves the target error."""
        p = generate_clique(3)
        target = 0.05
        trials = trials_for_error(sample_graph, p, target, pilot_trials=2_000, seed=1)
        r = approximate_count(sample_graph, p, trials=trials, seed=99)
        exact = count(sample_graph, p)
        assert abs(r.estimate - exact) / exact < 3 * target

    def test_zero_signal_pilot_rejected(self):
        g = from_edges([(0, 1), (1, 2)])
        with pytest.raises(ValueError):
            trials_for_error(g, generate_clique(3), 0.1, pilot_trials=200, seed=1)

    def test_invalid_target_rejected(self, sample_graph):
        with pytest.raises(ValueError):
            trials_for_error(sample_graph, generate_clique(3), 0.0)


class TestGraphCoercion:
    """approximate_count routes graph access through as_session."""

    def test_session_and_graph_agree(self, sample_graph):
        from repro.core import MiningSession

        p = generate_clique(3)
        via_graph = approximate_count(sample_graph, p, trials=500, seed=3)
        session = MiningSession(sample_graph)
        via_session = approximate_count(session, p, trials=500, seed=3)
        assert via_session.estimate == via_graph.estimate

    def test_path_input_accepted(self, tmp_path):
        from repro.graph import save_edge_list

        g = erdos_renyi(30, 0.2, seed=4)
        path = tmp_path / "g.txt"
        save_edge_list(g, path)
        p = generate_clique(3)
        direct = approximate_count(g, p, trials=300, seed=5)
        loaded = approximate_count(str(path), p, trials=300, seed=5)
        assert loaded.estimate == direct.estimate

    def test_bad_input_rejected(self):
        with pytest.raises(TypeError):
            approximate_count(42, generate_clique(3), trials=10)
