"""Bench-artifact schema regression: the committed JSONs keep their keys.

The repo-root ``BENCH_*.json`` files are the regression baselines future
PRs compare against, and CI smoke only re-runs the cheap paths — so a
bench refactor that silently renames or drops a top-level key would rot
every downstream consumer without failing anything.  This suite pins the
top-level schema (and the workload-entry schema where one exists) of
each committed artifact.
"""

from __future__ import annotations

import json
from pathlib import Path

import pytest

REPO_ROOT = Path(__file__).resolve().parents[1]

# artifact -> (required top-level keys, expected "bench" tag)
SCHEMAS = {
    "BENCH_engine.json": (
        {"bench", "n", "engines", "note", "results"},
        "engine-frontier",
    ),
    "BENCH_session.json": (
        {"bench", "rounds_per_workload", "note", "workloads"},
        "session-reuse",
    ),
    "BENCH_multipattern.json": (
        {"bench", "rounds_per_workload", "sequential_engine", "note", "workloads"},
        "multipattern-fusion",
    ),
    "BENCH_parallel.json": (
        {
            "bench",
            "host_cpus",
            "processes",
            "rounds_per_workload",
            "note",
            "workloads",
        },
        "parallel-schedule",
    ),
    "BENCH_storage.json": (
        {"bench", "n", "edges", "note", "cold_start", "fanout_rss", "membership"},
        "storage",
    ),
    "BENCH_guards.json": (
        {"bench", "n", "note", "overhead", "probe", "recovery"},
        "guards",
    ),
    "BENCH_planner.json": (
        {"bench", "rounds_per_cell", "note", "cells", "acceptance"},
        "planner",
    ),
    "BENCH_approx.json": (
        {
            "bench",
            "graph",
            "motifs",
            "rel_err_target",
            "confidence",
            "max_samples",
            "note",
            "exact",
            "reps",
            "acceptance",
        },
        "approx",
    ),
    "BENCH_service.json": (
        {
            "bench",
            "n",
            "edges",
            "requests_per_client",
            "patterns",
            "note",
            "levels",
            "acceptance",
        },
        "service",
    ),
}

# Per-workload keys for the workload-shaped artifacts.
WORKLOAD_KEYS = {
    "BENCH_session.json": {"n", "rounds", "best_warm_speedup_vs_cold"},
    "BENCH_multipattern.json": {"n", "kind", "rounds", "best_fused_speedup"},
    "BENCH_parallel.json": {
        "n",
        "kind",
        "pattern",
        "matches",
        "rounds",
        "best_speedup_vs_static",
    },
}


def _load(name: str) -> dict:
    path = REPO_ROOT / name
    assert path.exists(), f"{name} missing from the repo root"
    return json.loads(path.read_text())


@pytest.mark.parametrize("name", sorted(SCHEMAS))
def test_top_level_keys_stable(name):
    required, tag = SCHEMAS[name]
    payload = _load(name)
    missing = required - payload.keys()
    assert not missing, f"{name} lost top-level key(s) {sorted(missing)}"
    assert payload["bench"] == tag


@pytest.mark.parametrize("name", sorted(WORKLOAD_KEYS))
def test_workload_entries_stable(name):
    payload = _load(name)
    assert payload["workloads"], f"{name} has no workloads"
    for workload, entry in payload["workloads"].items():
        missing = WORKLOAD_KEYS[name] - entry.keys()
        assert not missing, (
            f"{name} workload {workload!r} lost key(s) {sorted(missing)}"
        )
        assert entry["rounds"], f"{name} workload {workload!r} has no rounds"


def test_engine_results_rows_stable():
    payload = _load("BENCH_engine.json")
    assert payload["results"], "BENCH_engine.json has no result rows"
    row_keys = {"pattern", "avg_degree", "matches", "batch_speedup_vs_reference"}
    for row in payload["results"]:
        missing = row_keys - row.keys()
        assert not missing, f"engine sweep row lost key(s) {sorted(missing)}"


def test_multipattern_acceptance_recorded():
    """The committed artifact records a census win, not just timings."""
    payload = _load("BENCH_multipattern.json")
    census = payload["workloads"]["3-motif-census"]
    assert census["best_fused_speedup"] > 1.0


def test_parallel_acceptance_recorded():
    """Work stealing: never loses on uniform, wins the straggler regime."""
    payload = _load("BENCH_parallel.json")
    workloads = payload["workloads"]
    for name, entry in workloads.items():
        for P, speedup in entry["best_speedup_vs_static"].items():
            assert speedup >= 0.95, (
                f"{name}: dynamic lost to static at {P} processes"
            )
        for row in entry["rounds"]:
            assert {
                "processes",
                "static_makespan_seconds",
                "dynamic_makespan_seconds",
                "speedup_vs_static",
            } <= row.keys()
    flash = workloads["power-law-flash-crowd"]
    assert max(flash["best_speedup_vs_static"].values()) >= 1.5


def test_guards_acceptance_recorded():
    """Disarmed guardrails are free; a lost worker costs a round, not a rerun."""
    payload = _load("BENCH_guards.json")
    overhead = payload["overhead"]
    assert {
        "unguarded_seconds",
        "guard_off_seconds",
        "guarded_seconds",
        "guard_off_ratio",
        "guarded_ratio",
    } <= overhead.keys()
    assert overhead["guard_off_ratio"] <= 1.02, (
        "disarmed guardrail path exceeded the 2% overhead bar"
    )
    probe = payload["probe"]
    assert {"probe_seconds", "predicted_partials", "hub_count",
            "threshold", "explosive"} <= probe.keys()
    recovery = payload["recovery"]
    assert {
        "clean_seconds",
        "crash_seconds",
        "overhead_ratio",
        "death_chunk",
        "num_chunks",
    } <= recovery.keys()
    assert recovery["num_chunks"] > 0
    assert recovery["overhead_ratio"] >= 1.0


def test_service_acceptance_recorded():
    """Fused batching pays under concurrent load, and actually engaged."""
    payload = _load("BENCH_service.json")
    assert payload["levels"], "BENCH_service.json has no concurrency levels"
    cell_keys = {
        "clients",
        "requests",
        "seconds",
        "throughput_rps",
        "p50_ms",
        "p99_ms",
        "fusion_batch_rate",
        "deduped_requests",
        "max_batch_size",
    }
    for level in payload["levels"]:
        assert {"clients", "batched", "unbatched", "batched_speedup"} <= (
            level.keys()
        )
        for mode in ("batched", "unbatched"):
            missing = cell_keys - level[mode].keys()
            assert not missing, (
                f"service level {level['clients']} {mode} lost "
                f"key(s) {sorted(missing)}"
            )
        assert level["unbatched"]["fusion_batch_rate"] == 0.0
    acceptance = payload["acceptance"]
    assert acceptance["clients"] == 16
    assert acceptance["batched_speedup"] >= 1.3, (
        "batched throughput fell below 1.3x unbatched at 16 clients"
    )
    assert acceptance["fusion_batch_rate"] > 0.0


def test_planner_acceptance_recorded():
    """Adaptive planning never loses a cell and wins the skewed one big."""
    payload = _load("BENCH_planner.json")
    cells = payload["cells"]
    assert cells, "BENCH_planner.json has no sweep cells"
    cell_keys = {
        "n",
        "matches",
        "rounds",
        "fixed_engine",
        "auto_engine",
        "auto_schedule",
        "probe",
        "fixed_seconds",
        "auto_seconds",
        "speedup",
    }
    for name, cell in cells.items():
        missing = cell_keys - cell.keys()
        assert not missing, f"planner cell {name!r} lost key(s) {sorted(missing)}"
        assert cell["speedup"] >= 0.95, (
            f"adaptive plan lost cell {name!r} by more than 5%"
        )
        # The fixed ablation is schema-pinned: both arms are recorded.
        assert cell["fixed_engine"] in ("reference", "accel", "accel-batch")
        assert cell["auto_engine"] in ("reference", "accel", "accel-batch")
    skewed = cells["skewed-labeled-core"]
    assert skewed["speedup"] >= 1.3, (
        "adaptive planning lost its headline win: the labeled-core cell "
        "fell below 1.3x over the fixed thresholds"
    )
    # The win is an engine flip the fixed heuristic cannot see.
    assert skewed["fixed_engine"] == "reference"
    assert skewed["auto_engine"] == "accel-batch"
    acceptance = payload["acceptance"]
    assert acceptance["min_speedup"] >= 0.95
    assert acceptance["skewed_speedup"] >= 1.3


def test_approx_acceptance_recorded():
    """The sampling tier's headline: 5x over exact fusion within 5%."""
    payload = _load("BENCH_approx.json")
    assert payload["exact"]["counts"], "no exact census baseline recorded"
    rep_keys = {"seed", "seconds", "samples", "rel_err", "in_ci"}
    assert payload["reps"], "BENCH_approx.json has no repetitions"
    for rep in payload["reps"]:
        missing = rep_keys - rep.keys()
        assert not missing, f"approx rep lost key(s) {sorted(missing)}"
        assert set(rep["rel_err"]) == set(payload["motifs"])
    acceptance = payload["acceptance"]
    assert acceptance["speedup"] >= 5.0, (
        "sampling tier fell below 5x over the exact fused census"
    )
    assert acceptance["max_rel_err"] <= payload["rel_err_target"], (
        "median achieved relative error blew the 5% target"
    )
    assert acceptance["ci_coverage"] >= 0.90, (
        "empirical CI coverage fell below the 90% bar for 95% intervals"
    )
    # Worst-case cell is recorded transparently alongside the medians.
    assert acceptance["worst_rel_err"] >= acceptance["max_rel_err"]


def test_storage_acceptance_recorded():
    """The mmap tier's cold-start win and the membership kernels held."""
    payload = _load("BENCH_storage.json")
    cold = payload["cold_start"]
    assert {"best_seconds", "file_bytes", "mmap_speedup_vs_text"} <= cold.keys()
    assert cold["mmap_speedup_vs_text"] >= 5.0
    fanout = payload["fanout_rss"]
    assert fanout["shm"]["parent_tmpfs_copy_bytes"] > 0
    assert fanout["mmap"]["parent_extra_bytes"] == 0
    row_keys = {
        "queries",
        "num_hubs",
        "searchsorted_seconds",
        "roaring_seconds",
        "roaring_speedup",
    }
    assert payload["membership"], "no membership rounds recorded"
    for row in payload["membership"]:
        assert row_keys <= row.keys()
        assert row["num_hubs"] > 0