"""Tests for the concurrent runtime: scheduler, threads, aggregation."""

import threading
import time

import pytest

from repro.core import Aggregator, ExplorationControl, count
from repro.graph import erdos_renyi
from repro.pattern import generate_clique, pattern_p1
from repro.runtime import (
    AggregatorThread,
    DeadlineControl,
    TaskScheduler,
    parallel_match,
    process_count,
    stop_after_n_matches,
    stop_when_aggregate,
)


class TestTaskScheduler:
    def test_chunks_cover_everything_once(self):
        sched = TaskScheduler(range(100), chunk_size=7)
        seen = []
        while True:
            chunk = sched.next_chunk()
            if not chunk:
                break
            seen.extend(chunk)
        assert seen == list(range(100))

    def test_degree_descending_order(self):
        sched = TaskScheduler.degree_descending(5, chunk_size=10)
        assert list(sched.next_chunk()) == [4, 3, 2, 1, 0]

    def test_remaining_and_reset(self):
        sched = TaskScheduler(range(10), chunk_size=4)
        sched.next_chunk()
        assert sched.remaining() == 6
        sched.reset()
        assert sched.remaining() == 10

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            TaskScheduler(range(3), chunk_size=0)

    def test_thread_safety(self):
        sched = TaskScheduler(range(1000), chunk_size=3)
        collected = []
        lock = threading.Lock()

        def worker():
            while True:
                chunk = sched.next_chunk()
                if not chunk:
                    return
                with lock:
                    collected.extend(chunk)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(collected) == list(range(1000))


class TestParallelMatch:
    def test_counts_match_sequential(self):
        g = erdos_renyi(80, 0.12, seed=1)
        expected = count(g, pattern_p1())
        for threads in (1, 2, 4):
            result = parallel_match(g, pattern_p1(), num_threads=threads)
            assert result.matches == expected

    def test_callback_aggregation(self):
        g = erdos_renyi(60, 0.15, seed=2)
        expected = count(g, generate_clique(3))

        def cb(m, agg):
            agg.map_pattern("triangles", 1)

        result = parallel_match(g, generate_clique(3), num_threads=3, callback=cb)
        assert result.aggregates.get("triangles") == expected

    def test_stats_merged(self):
        # Engine stats are a reference-engine feature; force it so the
        # counters are populated (auto would pick the batched engine).
        g = erdos_renyi(50, 0.15, seed=3)
        result = parallel_match(g, generate_clique(3), num_threads=2,
                                engine="reference")
        assert result.engine == "reference"
        assert result.stats.complete_matches == result.matches
        assert result.stats.tasks == 50

    def test_early_stop_with_control(self):
        g = erdos_renyi(60, 0.25, seed=4)
        control = ExplorationControl()

        def cb(m, agg):
            control.stop()

        result = parallel_match(
            g, generate_clique(3), num_threads=2, callback=cb, control=control
        )
        assert result.matches < count(g, generate_clique(3))

    def test_per_thread_accounting(self):
        g = erdos_renyi(60, 0.2, seed=5)
        result = parallel_match(g, generate_clique(3), num_threads=3, chunk_size=4)
        assert sum(result.per_thread_matches) == result.matches
        assert 0.0 <= result.load_imbalance() <= 1.0


class TestParallelMatchEngines:
    """The accel-exclusion fix: threads dispatch per-worker like count."""

    @pytest.mark.parametrize("engine", ["auto", "accel-batch", "reference"])
    def test_identical_totals_across_engines(self, engine):
        g = erdos_renyi(70, 0.15, seed=8)
        expected = count(g, generate_clique(3), engine="reference")
        result = parallel_match(
            g, generate_clique(3), num_threads=3, engine=engine
        )
        assert result.matches == expected

    def test_auto_without_hooks_drives_batched_engine(self):
        g = erdos_renyi(70, 0.15, seed=8)  # well above the batch crossover
        result = parallel_match(g, generate_clique(3), num_threads=2)
        assert result.engine == "accel-batch"
        assert result.matches == count(g, generate_clique(3), engine="reference")

    def test_single_vertex_core_pattern_batched(self):
        from repro.pattern import generate_chain

        g = erdos_renyi(60, 0.15, seed=9)
        result = parallel_match(g, generate_chain(3), num_threads=3)
        assert result.engine == "accel-batch"
        assert result.matches == count(g, generate_chain(3), engine="reference")

    def test_callback_aggregation_on_batched_engine(self):
        g = erdos_renyi(60, 0.15, seed=10)
        expected = count(g, generate_clique(3), engine="reference")

        def cb(m, agg):
            agg.map_pattern("triangles", 1)

        result = parallel_match(g, generate_clique(3), num_threads=3, callback=cb)
        assert result.engine == "accel-batch"
        assert result.aggregates.get("triangles") == expected

    def test_user_control_stays_on_batched_engine(self):
        # Since the batched engine polls controls between frontier blocks
        # (and per emitted match), a user control no longer forces the
        # interpreter under auto dispatch.
        g = erdos_renyi(50, 0.15, seed=11)
        result = parallel_match(
            g, generate_clique(3), num_threads=2, control=ExplorationControl()
        )
        assert result.engine == "accel-batch"
        assert result.matches == count(g, generate_clique(3), engine="reference")

    def test_forced_batch_with_control_stops_early(self):
        g = erdos_renyi(40, 0.3, seed=12)
        control = ExplorationControl()

        def cb(m, agg):
            control.stop()

        result = parallel_match(
            g,
            generate_clique(3),
            num_threads=2,
            callback=cb,
            control=control,
            engine="accel-batch",
        )
        assert result.engine == "accel-batch"
        assert control.stopped
        assert result.matches < count(g, generate_clique(3), engine="reference")

    def test_unknown_engine_rejected(self):
        g = erdos_renyi(20, 0.3, seed=13)
        with pytest.raises(ValueError):
            parallel_match(g, generate_clique(3), engine="warp-drive")

    def test_labeled_pattern_batched_totals(self):
        from repro.graph import with_random_labels
        from repro.pattern import generate_chain

        g = with_random_labels(erdos_renyi(60, 0.15, seed=14), 3, seed=2)
        p = generate_chain(3)
        p.set_label(0, 0)
        p.set_label(2, 1)
        expected = count(g, p, engine="reference")
        result = parallel_match(g, p, num_threads=3)
        assert result.matches == expected


class TestProcessCount:
    def test_matches_sequential(self):
        g = erdos_renyi(60, 0.15, seed=6)
        expected = count(g, generate_clique(3))
        assert process_count(g, generate_clique(3), num_processes=1) == expected
        assert process_count(g, generate_clique(3), num_processes=2) == expected

    def test_vertex_induced(self):
        g = erdos_renyi(40, 0.2, seed=7)
        from repro.pattern import generate_star

        expected = count(g, generate_star(3), edge_induced=False)
        got = process_count(
            g, generate_star(3), num_processes=2, edge_induced=False
        )
        assert got == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm", "pickle"])
    def test_share_modes_agree(self, share_mode):
        if share_mode == "fork":
            import multiprocessing

            if "fork" not in multiprocessing.get_all_start_methods():
                pytest.skip("fork start method unavailable")
        g = erdos_renyi(60, 0.15, seed=6)
        expected = count(g, generate_clique(3))
        got = process_count(
            g, generate_clique(3), num_processes=3, share_mode=share_mode
        )
        assert got == expected

    def test_shared_labeled_graph(self):
        from repro.graph import with_random_labels
        from repro.pattern import generate_chain

        g = with_random_labels(erdos_renyi(50, 0.2, seed=9), 3, seed=4)
        p = generate_chain(3)
        p.set_label(0, 1)
        p.set_label(2, 2)
        expected = count(g, p)
        assert process_count(g, p, num_processes=2) == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm"])
    def test_dense_graph_uses_accelerated_workers(self, share_mode):
        """Dense regime: workers must run the vectorized engine path."""
        import multiprocessing

        from repro.core import accel_preferred, generate_plan

        if share_mode == "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable")
        g = erdos_renyi(200, 0.7, seed=13)
        ordered, _ = g.degree_ordered()
        plan = generate_plan(generate_clique(3))
        assert accel_preferred(ordered, plan)  # guard: accel path engaged
        expected = count(g, generate_clique(3))
        got = process_count(
            g, generate_clique(3), num_processes=2, share_mode=share_mode
        )
        assert got == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm"])
    def test_dense_labeled_graph_shares_label_arrays(self, share_mode):
        """Labels must survive CSR sharing into accelerated workers."""
        import multiprocessing

        from repro.graph import with_random_labels
        from repro.pattern import generate_clique as clique

        if share_mode == "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable")
        g = with_random_labels(erdos_renyi(200, 0.7, seed=17), 3, seed=3)
        p = clique(3)
        p.set_label(0, 1)
        p.set_label(1, 2)
        expected = count(g, p)
        got = process_count(g, p, num_processes=2, share_mode=share_mode)
        assert got == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm"])
    def test_moderate_density_uses_batched_workers(self, share_mode):
        """The batched tier engages far below the old 128 crossover."""
        import multiprocessing

        from repro.core import batch_preferred, generate_plan

        if share_mode == "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable")
        g = erdos_renyi(80, 0.1, seed=21)  # avg degree ~8
        ordered, _ = g.degree_ordered()
        plan = generate_plan(generate_clique(3))
        assert batch_preferred(ordered, plan)  # guard: batch path engaged
        expected = count(g, generate_clique(3), engine="reference")
        got = process_count(
            g, generate_clique(3), num_processes=3, share_mode=share_mode
        )
        assert got == expected

    def test_labeled_frontier_slicing_partitions_work(self):
        """Workers slice the label-filtered frontier, not vertex ranges."""
        from repro.graph import with_random_labels
        from repro.pattern import generate_chain

        g = with_random_labels(erdos_renyi(70, 0.12, seed=23), 3, seed=5)
        p = generate_chain(3)
        p.set_label(0, 1)
        p.set_label(2, 2)
        expected = count(g, p, engine="reference")
        for procs in (2, 3):
            assert process_count(g, p, num_processes=procs) == expected

    def test_unknown_share_mode_rejected(self):
        g = erdos_renyi(20, 0.3, seed=2)
        with pytest.raises(ValueError):
            process_count(
                g, generate_clique(3), num_processes=2, share_mode="carrier-pigeon"
            )


class TestAggregatorThread:
    def test_merges_local_values(self):
        global_agg = Aggregator()
        locals_ = [Aggregator(), Aggregator()]
        locals_[0].map_pattern("x", 2)
        locals_[1].map_pattern("x", 3)
        with AggregatorThread(global_agg, locals_, interval=0.001):
            time.sleep(0.02)
        assert global_agg.get("x") == 5

    def test_on_update_hook_runs(self):
        global_agg = Aggregator()
        local = Aggregator()
        local.map_pattern("k", 1)
        seen = []
        t = AggregatorThread(
            global_agg, [local], interval=0.001, on_update=lambda a: seen.append(a.get("k"))
        )
        t.start()
        time.sleep(0.02)
        t.stop()
        assert seen and seen[-1] == 1


class TestTerminationHelpers:
    def test_stop_after_n(self):
        control = ExplorationControl()
        calls = []
        cb = stop_after_n_matches(control, 3, inner=calls.append)
        from repro.core import Match
        from repro.pattern import Pattern

        m = Match(Pattern.from_edges([(0, 1)]), (0, 1))
        for _ in range(3):
            cb(m)
        assert control.stopped
        assert len(calls) == 3

    def test_stop_when_aggregate(self):
        control = ExplorationControl()
        agg = Aggregator()
        hook = stop_when_aggregate(control, "n", lambda v: v >= 10)
        agg.map_pattern("n", 5)
        hook(agg)
        assert not control.stopped
        agg.map_pattern("n", 5)
        hook(agg)
        assert control.stopped

    def test_deadline_control(self):
        c = DeadlineControl(0.01)
        assert not c.stopped
        time.sleep(0.02)
        assert c.stopped


class TestAggregator:
    def test_custom_combine(self):
        agg = Aggregator(combine=max)
        agg.map_pattern("k", 3)
        agg.map_pattern("k", 1)
        assert agg.get("k") == 3

    def test_merge_from_drains_source(self):
        a, b = Aggregator(), Aggregator()
        b.map_pattern("k", 4)
        a.merge_from(b)
        assert a.get("k") == 4
        assert len(b) == 0

    def test_result_snapshot(self):
        agg = Aggregator()
        agg.map_pattern("a", 1)
        snap = agg.result()
        agg.map_pattern("b", 2)
        assert snap == {"a": 1}
        assert agg.keys() == ["a", "b"]
