"""Tests for the concurrent runtime: scheduler, threads, aggregation."""

import os
import threading
import time

import pytest

from repro.core import Aggregator, ExplorationControl, MiningSession, count
from repro.errors import QueryCancelledError, WorkerCrashError
from repro.runtime import parallel
from repro.graph import erdos_renyi, with_random_labels
from repro.pattern import (
    Pattern,
    generate_all_vertex_induced,
    generate_clique,
    pattern_p1,
)
from repro.runtime import (
    AggregatorThread,
    DeadlineControl,
    TaskScheduler,
    parallel_match,
    process_count,
    process_count_many,
    stop_after_n_matches,
    stop_when_aggregate,
)


def _boom(_args):
    """A picklable stand-in worker that fails mid-run."""
    raise RuntimeError("worker exploded")


def _boom_worker(*_args):
    """Tolerant-worker stand-in: dies in every spawned child.

    The parent sees a nonzero exit, requeues the leased chunks, and —
    once retries are exhausted — reports WorkerCrashError; patching the
    module works because fork children inherit the patched module.
    """
    raise RuntimeError("worker exploded")


class TestTaskScheduler:
    def test_chunks_cover_everything_once(self):
        sched = TaskScheduler(range(100), chunk_size=7)
        seen = []
        while True:
            chunk = sched.next_chunk()
            if not chunk:
                break
            seen.extend(chunk)
        assert seen == list(range(100))

    def test_degree_descending_order(self):
        sched = TaskScheduler.degree_descending(5, chunk_size=10)
        assert list(sched.next_chunk()) == [4, 3, 2, 1, 0]

    def test_remaining_and_reset(self):
        sched = TaskScheduler(range(10), chunk_size=4)
        sched.next_chunk()
        assert sched.remaining() == 6
        sched.reset()
        assert sched.remaining() == 10

    def test_bad_chunk_size(self):
        with pytest.raises(ValueError):
            TaskScheduler(range(3), chunk_size=0)

    def test_thread_safety(self):
        sched = TaskScheduler(range(1000), chunk_size=3)
        collected = []
        lock = threading.Lock()

        def worker():
            while True:
                chunk = sched.next_chunk()
                if not chunk:
                    return
                with lock:
                    collected.extend(chunk)

        threads = [threading.Thread(target=worker) for _ in range(8)]
        for t in threads:
            t.start()
        for t in threads:
            t.join()
        assert sorted(collected) == list(range(1000))


class TestParallelMatch:
    def test_counts_match_sequential(self):
        g = erdos_renyi(80, 0.12, seed=1)
        expected = count(g, pattern_p1())
        for threads in (1, 2, 4):
            result = parallel_match(g, pattern_p1(), num_threads=threads)
            assert result.matches == expected

    def test_callback_aggregation(self):
        g = erdos_renyi(60, 0.15, seed=2)
        expected = count(g, generate_clique(3))

        def cb(m, agg):
            agg.map_pattern("triangles", 1)

        result = parallel_match(g, generate_clique(3), num_threads=3, callback=cb)
        assert result.aggregates.get("triangles") == expected

    def test_stats_merged(self):
        # Engine stats are a reference-engine feature; force it so the
        # counters are populated (auto would pick the batched engine).
        g = erdos_renyi(50, 0.15, seed=3)
        result = parallel_match(g, generate_clique(3), num_threads=2,
                                engine="reference")
        assert result.engine == "reference"
        assert result.stats.complete_matches == result.matches
        assert result.stats.tasks == 50

    def test_early_stop_with_control(self):
        g = erdos_renyi(60, 0.25, seed=4)
        control = ExplorationControl()

        def cb(m, agg):
            control.stop()

        result = parallel_match(
            g, generate_clique(3), num_threads=2, callback=cb, control=control
        )
        assert result.matches < count(g, generate_clique(3))

    def test_per_thread_accounting(self):
        g = erdos_renyi(60, 0.2, seed=5)
        result = parallel_match(g, generate_clique(3), num_threads=3, chunk_size=4)
        assert sum(result.per_thread_matches) == result.matches
        assert 0.0 <= result.load_imbalance() <= 1.0


class TestParallelMatchEngines:
    """The accel-exclusion fix: threads dispatch per-worker like count."""

    @pytest.mark.parametrize("engine", ["auto", "accel-batch", "reference"])
    def test_identical_totals_across_engines(self, engine):
        g = erdos_renyi(70, 0.15, seed=8)
        expected = count(g, generate_clique(3), engine="reference")
        result = parallel_match(
            g, generate_clique(3), num_threads=3, engine=engine
        )
        assert result.matches == expected

    def test_auto_without_hooks_drives_batched_engine(self):
        g = erdos_renyi(70, 0.15, seed=8)  # well above the batch crossover
        result = parallel_match(g, generate_clique(3), num_threads=2)
        assert result.engine == "accel-batch"
        assert result.matches == count(g, generate_clique(3), engine="reference")

    def test_single_vertex_core_pattern_batched(self):
        from repro.pattern import generate_chain

        g = erdos_renyi(60, 0.15, seed=9)
        result = parallel_match(g, generate_chain(3), num_threads=3)
        assert result.engine == "accel-batch"
        assert result.matches == count(g, generate_chain(3), engine="reference")

    def test_callback_aggregation_on_batched_engine(self):
        g = erdos_renyi(60, 0.15, seed=10)
        expected = count(g, generate_clique(3), engine="reference")

        def cb(m, agg):
            agg.map_pattern("triangles", 1)

        result = parallel_match(g, generate_clique(3), num_threads=3, callback=cb)
        assert result.engine == "accel-batch"
        assert result.aggregates.get("triangles") == expected

    def test_user_control_stays_on_batched_engine(self):
        # Since the batched engine polls controls between frontier blocks
        # (and per emitted match), a user control no longer forces the
        # interpreter under auto dispatch.
        g = erdos_renyi(50, 0.15, seed=11)
        result = parallel_match(
            g, generate_clique(3), num_threads=2, control=ExplorationControl()
        )
        assert result.engine == "accel-batch"
        assert result.matches == count(g, generate_clique(3), engine="reference")

    def test_forced_batch_with_control_stops_early(self):
        g = erdos_renyi(40, 0.3, seed=12)
        control = ExplorationControl()

        def cb(m, agg):
            control.stop()

        result = parallel_match(
            g,
            generate_clique(3),
            num_threads=2,
            callback=cb,
            control=control,
            engine="accel-batch",
        )
        assert result.engine == "accel-batch"
        assert control.stopped
        assert result.matches < count(g, generate_clique(3), engine="reference")

    def test_unknown_engine_rejected(self):
        g = erdos_renyi(20, 0.3, seed=13)
        with pytest.raises(ValueError):
            parallel_match(g, generate_clique(3), engine="warp-drive")

    def test_labeled_pattern_batched_totals(self):
        from repro.graph import with_random_labels
        from repro.pattern import generate_chain

        g = with_random_labels(erdos_renyi(60, 0.15, seed=14), 3, seed=2)
        p = generate_chain(3)
        p.set_label(0, 0)
        p.set_label(2, 1)
        expected = count(g, p, engine="reference")
        result = parallel_match(g, p, num_threads=3)
        assert result.matches == expected


class TestProcessCount:
    def test_matches_sequential(self):
        g = erdos_renyi(60, 0.15, seed=6)
        expected = count(g, generate_clique(3))
        assert process_count(g, generate_clique(3), num_processes=1) == expected
        assert process_count(g, generate_clique(3), num_processes=2) == expected

    def test_vertex_induced(self):
        g = erdos_renyi(40, 0.2, seed=7)
        from repro.pattern import generate_star

        expected = count(g, generate_star(3), edge_induced=False)
        got = process_count(
            g, generate_star(3), num_processes=2, edge_induced=False
        )
        assert got == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm", "mmap", "pickle"])
    def test_share_modes_agree(self, share_mode):
        if share_mode == "fork":
            import multiprocessing

            if "fork" not in multiprocessing.get_all_start_methods():
                pytest.skip("fork start method unavailable")
        g = erdos_renyi(60, 0.15, seed=6)
        expected = count(g, generate_clique(3))
        got = process_count(
            g, generate_clique(3), num_processes=3, share_mode=share_mode
        )
        assert got == expected

    def test_shared_labeled_graph(self):
        from repro.graph import with_random_labels
        from repro.pattern import generate_chain

        g = with_random_labels(erdos_renyi(50, 0.2, seed=9), 3, seed=4)
        p = generate_chain(3)
        p.set_label(0, 1)
        p.set_label(2, 2)
        expected = count(g, p)
        assert process_count(g, p, num_processes=2) == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm", "mmap"])
    def test_dense_graph_uses_accelerated_workers(self, share_mode):
        """Dense regime: workers must run the vectorized engine path."""
        import multiprocessing

        from repro.core import accel_preferred, generate_plan

        if share_mode == "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable")
        g = erdos_renyi(200, 0.7, seed=13)
        ordered, _ = g.degree_ordered()
        plan = generate_plan(generate_clique(3))
        assert accel_preferred(ordered, plan)  # guard: accel path engaged
        expected = count(g, generate_clique(3))
        got = process_count(
            g, generate_clique(3), num_processes=2, share_mode=share_mode
        )
        assert got == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm", "mmap"])
    def test_dense_labeled_graph_shares_label_arrays(self, share_mode):
        """Labels must survive CSR sharing into accelerated workers."""
        import multiprocessing

        from repro.graph import with_random_labels
        from repro.pattern import generate_clique as clique

        if share_mode == "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable")
        g = with_random_labels(erdos_renyi(200, 0.7, seed=17), 3, seed=3)
        p = clique(3)
        p.set_label(0, 1)
        p.set_label(1, 2)
        expected = count(g, p)
        got = process_count(g, p, num_processes=2, share_mode=share_mode)
        assert got == expected

    @pytest.mark.parametrize("share_mode", ["fork", "shm", "mmap"])
    def test_moderate_density_uses_batched_workers(self, share_mode):
        """The batched tier engages far below the old 128 crossover."""
        import multiprocessing

        from repro.core import batch_preferred, generate_plan

        if share_mode == "fork" and (
            "fork" not in multiprocessing.get_all_start_methods()
        ):
            pytest.skip("fork start method unavailable")
        g = erdos_renyi(80, 0.1, seed=21)  # avg degree ~8
        ordered, _ = g.degree_ordered()
        plan = generate_plan(generate_clique(3))
        assert batch_preferred(ordered, plan)  # guard: batch path engaged
        expected = count(g, generate_clique(3), engine="reference")
        got = process_count(
            g, generate_clique(3), num_processes=3, share_mode=share_mode
        )
        assert got == expected

    def test_labeled_frontier_slicing_partitions_work(self):
        """Workers slice the label-filtered frontier, not vertex ranges."""
        from repro.graph import with_random_labels
        from repro.pattern import generate_chain

        g = with_random_labels(erdos_renyi(70, 0.12, seed=23), 3, seed=5)
        p = generate_chain(3)
        p.set_label(0, 1)
        p.set_label(2, 2)
        expected = count(g, p, engine="reference")
        for procs in (2, 3):
            assert process_count(g, p, num_processes=procs) == expected

    def test_unknown_share_mode_rejected(self):
        g = erdos_renyi(20, 0.3, seed=2)
        with pytest.raises(ValueError):
            process_count(
                g, generate_clique(3), num_processes=2, share_mode="carrier-pigeon"
            )

    @pytest.mark.parametrize("schedule", ["dynamic", "static"])
    def test_pickle_fallback_counts_identical(self, schedule):
        """The numpy-free pickle mode must agree with the CSR modes.

        Regression guard for the share-mode matrix: a labeled pattern
        with an anti-edge exercises label filtering, the anti-edge
        kernels and the reference-engine worker path all at once.
        """
        g = with_random_labels(erdos_renyi(50, 0.18, seed=12), 3, seed=7)
        p = Pattern.from_edges([(0, 1), (1, 2)], anti_edges=[(0, 2)])
        p.set_label(1, 1)
        expected = count(g, p, engine="reference")
        for mode in ("pickle", "fork", "shm", "mmap"):
            got = process_count(
                g, p, num_processes=3, share_mode=mode, schedule=schedule
            )
            assert got == expected, (mode, schedule)


class TestProcessCountFailurePaths:
    """Workers dying mid-run must not leak shared-memory segments."""

    @pytest.mark.parametrize("schedule", ["dynamic", "static"])
    def test_shm_segments_unlinked_when_worker_raises(
        self, monkeypatch, schedule
    ):
        from multiprocessing import shared_memory

        from repro.runtime import parallel as parallel_module

        g = erdos_renyi(40, 0.2, seed=3)
        recorded: list[str] = []
        original = parallel_module._shm_segments

        def recording(view):
            segments, meta = original(view)
            recorded.extend(name for name, _ in meta.values() if name)
            return segments, meta

        monkeypatch.setattr(parallel_module, "_shm_segments", recording)
        # Under the fork start method the children inherit the patched
        # module.  Dynamic workers dying surfaces as WorkerCrashError
        # after the requeue retries run dry; static pool workers raising
        # propagates the exception itself.
        if schedule == "dynamic":
            from repro.errors import WorkerCrashError

            monkeypatch.setattr(
                parallel_module, "_tolerant_worker", _boom_worker
            )
            expectation = pytest.raises(WorkerCrashError)
        else:
            monkeypatch.setattr(parallel_module, "_batch_count_slice", _boom)
            expectation = pytest.raises(RuntimeError, match="worker exploded")
        with expectation:
            process_count(
                g,
                generate_clique(3),
                num_processes=2,
                share_mode="shm",
                schedule=schedule,
            )
        assert recorded, "shm mode allocated no segments"
        for name in recorded:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    def test_shm_segments_unlinked_on_success_too(self, monkeypatch):
        from multiprocessing import shared_memory

        from repro.runtime import parallel as parallel_module

        g = erdos_renyi(40, 0.2, seed=4)
        recorded: list[str] = []
        original = parallel_module._shm_segments

        def recording(view):
            segments, meta = original(view)
            recorded.extend(name for name, _ in meta.values() if name)
            return segments, meta

        monkeypatch.setattr(parallel_module, "_shm_segments", recording)
        expected = count(g, generate_clique(3))
        assert process_count(
            g, generate_clique(3), num_processes=2, share_mode="shm"
        ) == expected
        assert recorded
        for name in recorded:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)

    @pytest.mark.parametrize("schedule", ["dynamic", "static"])
    def test_mmap_spill_unlinked_when_worker_raises(
        self, monkeypatch, schedule
    ):
        import os

        from repro.runtime import parallel as parallel_module

        g = erdos_renyi(40, 0.2, seed=3)
        recorded: list[str] = []
        original = parallel_module._mmap_store

        def recording(session):
            path, is_temp = original(session)
            assert is_temp  # generated graph: must spill, not reuse
            recorded.append(path)
            return path, is_temp

        monkeypatch.setattr(parallel_module, "_mmap_store", recording)
        if schedule == "dynamic":
            from repro.errors import WorkerCrashError

            monkeypatch.setattr(
                parallel_module, "_tolerant_worker", _boom_worker
            )
            expectation = pytest.raises(WorkerCrashError)
        else:
            monkeypatch.setattr(parallel_module, "_batch_count_slice", _boom)
            expectation = pytest.raises(RuntimeError, match="worker exploded")
        with expectation:
            process_count(
                g,
                generate_clique(3),
                num_processes=2,
                share_mode="mmap",
                schedule=schedule,
            )
        assert recorded, "mmap mode spilled no store"
        for path in recorded:
            assert not os.path.exists(path)

    def test_mmap_spill_unlinked_on_success_too(self, monkeypatch):
        import os

        from repro.runtime import parallel as parallel_module

        g = erdos_renyi(40, 0.2, seed=4)
        recorded: list[str] = []
        original = parallel_module._mmap_store

        def recording(session):
            path, is_temp = original(session)
            recorded.append(path)
            return path, is_temp

        monkeypatch.setattr(parallel_module, "_mmap_store", recording)
        expected = count(g, generate_clique(3))
        assert process_count(
            g, generate_clique(3), num_processes=2, share_mode="mmap"
        ) == expected
        assert recorded
        for path in recorded:
            assert not os.path.exists(path)

    def test_mmap_reuses_degree_sorted_store_file(self, tmp_path):
        """A degree-ordered .rgx-backed session shares its own file with
        workers instead of spilling a copy."""
        from repro.core import MiningSession
        from repro.graph import save_mmap
        from repro.graph.binary_io import GraphStore
        from repro.runtime.parallel import _mmap_store

        g = erdos_renyi(50, 0.2, seed=6)
        ordered, _ = g.degree_ordered()
        path = tmp_path / "ordered.rgx"
        save_mmap(ordered, path)
        session = MiningSession(GraphStore(path))
        got_path, is_temp = _mmap_store(session)
        assert not is_temp
        assert got_path == str(path)
        expected = count(g, generate_clique(3))
        assert process_count(
            session, generate_clique(3), num_processes=2, share_mode="mmap"
        ) == expected
        assert path.exists()  # reused files are never unlinked

    def test_many_shm_segments_unlinked_when_worker_raises(self, monkeypatch):
        from multiprocessing import shared_memory

        from repro.runtime import parallel as parallel_module

        g = erdos_renyi(40, 0.2, seed=5)
        recorded: list[str] = []
        original = parallel_module._shm_segments

        def recording(view):
            segments, meta = original(view)
            recorded.extend(name for name, _ in meta.values() if name)
            return segments, meta

        monkeypatch.setattr(parallel_module, "_shm_segments", recording)
        from repro.errors import WorkerCrashError

        monkeypatch.setattr(
            parallel_module, "_tolerant_worker_many", _boom_worker
        )
        with pytest.raises(WorkerCrashError):
            process_count_many(
                g,
                generate_all_vertex_induced(3),
                num_processes=2,
                edge_induced=False,
                share_mode="shm",
            )
        assert recorded
        for name in recorded:
            with pytest.raises(FileNotFoundError):
                shared_memory.SharedMemory(name=name)


class TestProcessCountMany:
    @pytest.mark.parametrize("schedule", ["dynamic", "static"])
    @pytest.mark.parametrize("share_mode", ["fork", "shm", "mmap"])
    def test_census_pins_sequential(self, schedule, share_mode):
        g = erdos_renyi(70, 0.12, seed=8)
        motifs = generate_all_vertex_induced(3)
        expected = MiningSession(g).count_many(motifs, edge_induced=False)
        got = process_count_many(
            g,
            motifs,
            num_processes=3,
            edge_induced=False,
            share_mode=share_mode,
            schedule=schedule,
        )
        assert got == expected

    def test_label_pinned_groups_partition_correctly(self):
        """Patterns with distinct pinned start labels form distinct
        frontier groups; chunked workers must still demultiplex each
        pattern's count exactly."""
        from repro.pattern import generate_chain

        g = with_random_labels(erdos_renyi(60, 0.15, seed=9), 3, seed=2)
        patterns = []
        for lab in range(3):
            p = generate_chain(3)
            p.set_label(0, lab)
            p.set_label(1, (lab + 1) % 3)
            p.set_label(2, (lab + 2) % 3)
            patterns.append(p)
        patterns.append(generate_clique(3))  # unlabeled group
        session = MiningSession(g)
        expected = session.count_many(patterns)
        for schedule in ("dynamic", "static"):
            got = process_count_many(
                g, patterns, num_processes=2, schedule=schedule, chunk_hint=2
            )
            assert got == expected, schedule

    def test_session_verb_routes_processes(self):
        g = erdos_renyi(60, 0.12, seed=11)
        motifs = generate_all_vertex_induced(3)
        session = MiningSession(g)
        expected = session.count_many(motifs, edge_induced=False)
        got = session.count_many(
            motifs, edge_induced=False, num_processes=2
        )
        assert got == expected

    def test_frontier_chunk_forwarded_to_workers(self):
        # A pathological chunk bound must change nothing but memory use.
        g = erdos_renyi(50, 0.15, seed=15)
        motifs = generate_all_vertex_induced(3)
        session = MiningSession(g)
        expected = session.count_many(motifs, edge_induced=False)
        got = session.count_many(
            motifs, edge_induced=False, num_processes=2, frontier_chunk=2
        )
        assert got == expected

    def test_session_verb_rejects_hooks_under_processes(self):
        from repro.errors import MatchingError

        g = erdos_renyi(30, 0.2, seed=12)
        session = MiningSession(g)
        with pytest.raises(MatchingError):
            session.count_many(
                [generate_clique(3)],
                num_processes=2,
                control=ExplorationControl(),
            )
        with pytest.raises(MatchingError):
            session.count_many(
                [generate_clique(3)], num_processes=2, engine="reference"
            )

    def test_single_process_falls_back_to_sequential(self):
        g = erdos_renyi(40, 0.15, seed=13)
        motifs = generate_all_vertex_induced(3)
        assert process_count_many(
            g, motifs, num_processes=1, edge_induced=False
        ) == MiningSession(g).count_many(motifs, edge_induced=False)

    def test_unsupported_share_mode_rejected(self):
        g = erdos_renyi(20, 0.3, seed=14)
        with pytest.raises(ValueError):
            process_count_many(
                g, [generate_clique(3)], num_processes=2, share_mode="pickle"
            )


def _skip_unless_fork_available(share_mode):
    if share_mode == "fork":
        import multiprocessing

        if "fork" not in multiprocessing.get_all_start_methods():
            pytest.skip("fork start method unavailable")


class TestFaultInjection:
    """Deterministic crash tolerance via the REPRO_FAULT_WORKER_DIE knob.

    The spec is ``worker:chunk`` (either side ``"*"``): the matching
    worker calls ``os._exit(1)`` right after leasing the matching chunk,
    before running it.  Worker ids increment across respawn rounds, so a
    pinned-worker spec ("0:0") fires once and the requeued chunk lands
    on a fresh id — the recovery path — while a pinned-chunk spec
    ("*:1") kills every worker that ever leases chunk 1 and exhausts
    the retry budget — the poison path.
    """

    PATTERN_KW = dict(num_processes=2, schedule="dynamic", chunk_hint=4)

    def _graph_and_expected(self):
        g = erdos_renyi(60, 0.15, seed=6)
        return g, count(g, generate_clique(3))

    @pytest.mark.parametrize("share_mode", ["fork", "shm", "mmap", "pickle"])
    def test_worker_death_recovers_to_exact_count(
        self, share_mode, monkeypatch
    ):
        _skip_unless_fork_available(share_mode)
        g, expected = self._graph_and_expected()
        monkeypatch.setenv(parallel.FAULT_ENV, "0:0")
        got = process_count(
            g, generate_clique(3), share_mode=share_mode, **self.PATTERN_KW
        )
        assert got == expected

    def test_always_dying_worker_id_still_recovers(self, monkeypatch):
        # "0:*" kills worker id 0 on its first lease; every later spawn
        # gets a fresh id, so the whole frontier still completes exactly.
        g, expected = self._graph_and_expected()
        monkeypatch.setenv(parallel.FAULT_ENV, "0:*")
        got = process_count(g, generate_clique(3), **self.PATTERN_KW)
        assert got == expected

    def test_poison_chunk_exhausts_retries(self, monkeypatch):
        g, expected = self._graph_and_expected()
        monkeypatch.setenv(parallel.FAULT_ENV, "*:1")
        with pytest.raises(WorkerCrashError) as info:
            process_count(g, generate_clique(3), **self.PATTERN_KW)
        partial = info.value.partial
        assert partial.truncated
        assert partial.detail["failed_chunks"] == [1]
        # Every chunk except the poisoned one was still counted exactly.
        assert 0 < partial < expected

    def test_mmap_spill_cleaned_up_after_recovery(self, monkeypatch, tmp_path):
        from repro.runtime import parallel as parallel_module

        g, expected = self._graph_and_expected()
        recorded: list[str] = []
        original = parallel_module._mmap_store

        def recording(session):
            path, is_temp = original(session)
            if is_temp:
                recorded.append(path)
            return path, is_temp

        monkeypatch.setattr(parallel_module, "_mmap_store", recording)
        monkeypatch.setenv(parallel.FAULT_ENV, "0:0")
        got = process_count(
            g, generate_clique(3), share_mode="mmap", **self.PATTERN_KW
        )
        assert got == expected
        assert recorded  # a temp spill happened...
        for path in recorded:
            assert not os.path.exists(path)  # ...and was unlinked

    def test_count_many_recovers_to_exact_totals(self, monkeypatch):
        g = erdos_renyi(40, 0.2, seed=5)
        patterns = generate_all_vertex_induced(3)
        expected = {
            p: count(g, p, edge_induced=False) for p in patterns
        }
        monkeypatch.setenv(parallel.FAULT_ENV, "0:0")
        got = process_count_many(
            g,
            patterns,
            num_processes=2,
            edge_induced=False,
            schedule="dynamic",
            chunk_hint=4,
        )
        assert got == expected

    def test_malformed_fault_spec_rejected(self, monkeypatch):
        g, _ = self._graph_and_expected()
        monkeypatch.setenv(parallel.FAULT_ENV, "nonsense")
        with pytest.raises(ValueError, match="worker:chunk"):
            process_count(g, generate_clique(3), **self.PATTERN_KW)


class TestCancellation:
    def test_pre_stopped_cancel_raises_with_all_chunks_pending(self):
        g = erdos_renyi(60, 0.15, seed=6)
        with pytest.raises(QueryCancelledError) as info:
            process_count(
                g,
                generate_clique(3),
                num_processes=2,
                schedule="dynamic",
                chunk_hint=4,
                cancel=DeadlineControl(0.0),
            )
        partial = info.value.partial
        assert partial == 0
        assert partial.truncated
        assert partial.detail["pending_chunks"] > 0
        assert partial.detail["pending_chunks"] == partial.detail["num_chunks"]

    def test_unstopped_cancel_changes_nothing(self):
        g = erdos_renyi(60, 0.15, seed=6)
        expected = count(g, generate_clique(3))
        got = process_count(
            g,
            generate_clique(3),
            num_processes=2,
            schedule="dynamic",
            cancel=ExplorationControl(),
        )
        assert got == expected

    def test_cancel_requires_dynamic_schedule(self):
        g = erdos_renyi(30, 0.2, seed=6)
        with pytest.raises(ValueError, match="dynamic"):
            process_count(
                g,
                generate_clique(3),
                num_processes=2,
                schedule="static",
                cancel=ExplorationControl(),
            )


class TestAggregatorThread:
    def test_merges_local_values(self):
        global_agg = Aggregator()
        locals_ = [Aggregator(), Aggregator()]
        locals_[0].map_pattern("x", 2)
        locals_[1].map_pattern("x", 3)
        with AggregatorThread(global_agg, locals_, interval=0.001):
            time.sleep(0.02)
        assert global_agg.get("x") == 5

    def test_on_update_hook_runs(self):
        global_agg = Aggregator()
        local = Aggregator()
        local.map_pattern("k", 1)
        seen = []
        t = AggregatorThread(
            global_agg, [local], interval=0.001, on_update=lambda a: seen.append(a.get("k"))
        )
        t.start()
        time.sleep(0.02)
        t.stop()
        assert seen and seen[-1] == 1


class TestTerminationHelpers:
    def test_stop_after_n(self):
        control = ExplorationControl()
        calls = []
        cb = stop_after_n_matches(control, 3, inner=calls.append)
        from repro.core import Match
        from repro.pattern import Pattern

        m = Match(Pattern.from_edges([(0, 1)]), (0, 1))
        for _ in range(3):
            cb(m)
        assert control.stopped
        assert len(calls) == 3

    def test_stop_when_aggregate(self):
        control = ExplorationControl()
        agg = Aggregator()
        hook = stop_when_aggregate(control, "n", lambda v: v >= 10)
        agg.map_pattern("n", 5)
        hook(agg)
        assert not control.stopped
        agg.map_pattern("n", 5)
        hook(agg)
        assert control.stopped

    def test_deadline_control(self):
        c = DeadlineControl(0.01)
        assert not c.stopped
        time.sleep(0.02)
        assert c.stopped


class TestAggregator:
    def test_custom_combine(self):
        agg = Aggregator(combine=max)
        agg.map_pattern("k", 3)
        agg.map_pattern("k", 1)
        assert agg.get("k") == 3

    def test_merge_from_drains_source(self):
        a, b = Aggregator(), Aggregator()
        b.map_pattern("k", 4)
        a.merge_from(b)
        assert a.get("k") == 4
        assert len(b) == 0

    def test_result_snapshot(self):
        agg = Aggregator()
        agg.map_pattern("a", 1)
        snap = agg.result()
        agg.map_pattern("b", 2)
        assert snap == {"a": 1}
        assert agg.keys() == ["a", "b"]
