"""Brute-force oracle tests for combined matching constraints.

The existing oracle tests cover plain edge- and vertex-induced matching;
this module cross-checks the *combinations* the paper's advanced use
cases rely on: labels + anti-edges, anti-vertices on labeled graphs, and
partially-labeled patterns — against an exhaustive enumerator that knows
nothing about plans, cores or symmetry breaking.
"""

from __future__ import annotations

from itertools import combinations, permutations

import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import count, match
from repro.graph import DataGraph, erdos_renyi, with_random_labels
from repro.pattern import Pattern, automorphism_count, generate_chain, generate_clique


def brute_force_count(graph: DataGraph, p: Pattern) -> int:
    """Canonical match count by exhaustive assignment checking.

    Tries every injective assignment of pattern regular vertices to data
    vertices; checks edges, anti-edges, labels, then anti-vertex
    constraints; divides by |Aut| restricted to the matched pattern.
    Exponential — keep graphs tiny.
    """
    regular = p.regular_vertices()
    anti_vertices = set(p.anti_vertices())
    n = graph.num_vertices
    raw = 0
    for assignment in permutations(range(n), len(regular)):
        m = dict(zip(regular, assignment))
        ok = True
        for u, v in p.edges():
            if u in anti_vertices or v in anti_vertices:
                continue
            if not graph.has_edge(m[u], m[v]):
                ok = False
                break
        if ok:
            for u, v in p.anti_edges():
                if u in anti_vertices or v in anti_vertices:
                    continue
                if graph.has_edge(m[u], m[v]):
                    ok = False
                    break
        if ok and graph.is_labeled:
            for u in regular:
                want = p.label_of(u)
                if want is not None and graph.label(m[u]) != want:
                    ok = False
                    break
        if ok:
            used = set(assignment)
            for a in anti_vertices:
                nbrs = [m[w] for w in p.anti_neighbors(a)]
                common = set(graph.neighbors(nbrs[0]))
                for w in nbrs[1:]:
                    common &= set(graph.neighbors(w))
                if common - used:
                    ok = False
                    break
        if ok:
            raw += 1
    return raw // automorphism_count(p)


@pytest.fixture(scope="module")
def tiny():
    return erdos_renyi(12, 0.35, seed=6)


@pytest.fixture(scope="module")
def tiny_labeled():
    return with_random_labels(erdos_renyi(12, 0.35, seed=6), 2, seed=9)


class TestAntiEdgeCombinations:
    def test_wedge_with_anti_edge(self, tiny):
        p = generate_chain(3)
        p.add_anti_edge(0, 2)
        assert count(tiny, p) == brute_force_count(tiny, p)

    def test_square_with_diagonal_anti_edge(self, tiny):
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        p.add_anti_edge(0, 2)
        assert count(tiny, p) == brute_force_count(tiny, p)

    def test_labeled_anti_edge(self, tiny_labeled):
        p = generate_chain(3)
        p.add_anti_edge(0, 2)
        p.set_label(0, 0)
        p.set_label(2, 1)
        assert count(tiny_labeled, p) == brute_force_count(tiny_labeled, p)

    def test_two_anti_edges(self, tiny):
        # Paper's pb: 4-cycle with both diagonals anti (vertex-induced sq).
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        p.add_anti_edge(0, 2)
        p.add_anti_edge(1, 3)
        assert count(tiny, p) == brute_force_count(tiny, p)
        # Must equal vertex-induced matching of the plain square.
        sq = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        assert count(tiny, p) == count(tiny, sq, edge_induced=False)


class TestAntiVertexCombinations:
    def test_maximal_triangle_on_labeled_graph(self, tiny_labeled):
        p = generate_clique(3)
        p.add_anti_vertex([0, 1, 2])
        assert count(tiny_labeled, p) == brute_force_count(tiny_labeled, p)

    def test_anti_vertex_on_edge(self, tiny):
        # Paper's pe: triangle whose endpoints 0,1 have no common neighbor
        # outside the match (anti-vertex adjacent to two of the three).
        q = Pattern.from_edges([(0, 1), (1, 2), (2, 0)])
        q.add_anti_vertex([0, 1])
        assert count(tiny, q) == brute_force_count(tiny, q)

    def test_labeled_pattern_with_anti_vertex(self, tiny_labeled):
        q = Pattern.from_edges([(0, 1)])
        q.set_label(0, 0)
        q.add_anti_vertex([0, 1])
        assert count(tiny_labeled, q) == brute_force_count(tiny_labeled, q)


class TestPartialLabels:
    @pytest.mark.parametrize("labeled_vertex", [0, 1, 2])
    def test_one_labeled_vertex_in_wedge(self, tiny_labeled, labeled_vertex):
        p = generate_chain(3)
        p.set_label(labeled_vertex, 0)
        assert count(tiny_labeled, p) == brute_force_count(tiny_labeled, p)

    def test_vertex_induced_with_labels(self, tiny_labeled):
        p = generate_chain(3)
        p.set_label(1, 1)
        closed = p.vertex_induced_closure()
        assert count(tiny_labeled, p, edge_induced=False) == brute_force_count(
            tiny_labeled, closed
        )


class TestRandomizedConstraintOracle:
    @given(st.integers(min_value=0, max_value=5000), st.booleans())
    @settings(max_examples=12, deadline=None)
    def test_random_anti_edge_patterns(self, seed, use_labels):
        import random

        rng = random.Random(seed)
        g = erdos_renyi(10, 0.4, seed=seed)
        if use_labels:
            g = with_random_labels(g, 2, seed=seed + 1)
        # Random connected 3-4 vertex pattern with one anti-edge.
        size = rng.choice([3, 4])
        chain_edges = [(i, i + 1) for i in range(size - 1)]
        extra = [
            (u, v)
            for u, v in combinations(range(size), 2)
            if (u, v) not in chain_edges and rng.random() < 0.4
        ]
        p = Pattern.from_edges(chain_edges + extra)
        non_adjacent = [
            (u, v)
            for u, v in combinations(range(size), 2)
            if not p.are_connected(u, v)
        ]
        if non_adjacent:
            u, v = rng.choice(non_adjacent)
            p.add_anti_edge(u, v)
        if use_labels and rng.random() < 0.7:
            p.set_label(rng.randrange(size), rng.randrange(2))
        assert count(g, p) == brute_force_count(g, p)

    def test_enumerated_matches_satisfy_all_constraints(self, tiny_labeled):
        p = generate_chain(3)
        p.add_anti_edge(0, 2)
        p.set_label(1, 0)
        seen = []
        match(tiny_labeled, p, callback=lambda m: seen.append(m.mapping))
        assert len(seen) == count(tiny_labeled, p)
        for mapping in seen:
            v0, v1, v2 = mapping[0], mapping[1], mapping[2]
            assert tiny_labeled.has_edge(v0, v1)
            assert tiny_labeled.has_edge(v1, v2)
            assert not tiny_labeled.has_edge(v0, v2)
            assert tiny_labeled.label(v1) == 0
