"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceeded,
    GraphError,
    GraphFormatError,
    MatchingError,
    MemoryBudgetExceeded,
    PatternError,
    PatternFormatError,
    PlanError,
    ReproError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            GraphFormatError,
            PatternError,
            PatternFormatError,
            PlanError,
            MatchingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_format_errors_are_domain_errors(self):
        assert issubclass(GraphFormatError, GraphError)
        assert issubclass(PatternFormatError, PatternError)

    def test_budget_exceeded_payload(self):
        e = BudgetExceeded(150, 100)
        assert e.steps == 150
        assert e.budget == 100
        assert "150" in str(e)

    def test_memory_budget_payload(self):
        e = MemoryBudgetExceeded(2048, 1024)
        assert e.used_bytes == 2048
        assert e.budget_bytes == 1024

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise BudgetExceeded(2, 1)
