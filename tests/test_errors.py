"""Tests for the exception hierarchy."""

import pytest

from repro.errors import (
    BudgetExceeded,
    BudgetExceededError,
    GraphError,
    GraphFormatError,
    MatchingError,
    MemoryBudgetExceeded,
    PartialResult,
    PatternError,
    PatternFormatError,
    PlanError,
    QueryCancelledError,
    QueryRefusedError,
    ReproError,
    WorkerCrashError,
)


class TestHierarchy:
    @pytest.mark.parametrize(
        "exc",
        [
            GraphError,
            GraphFormatError,
            PatternError,
            PatternFormatError,
            PlanError,
            MatchingError,
        ],
    )
    def test_all_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    def test_format_errors_are_domain_errors(self):
        assert issubclass(GraphFormatError, GraphError)
        assert issubclass(PatternFormatError, PatternError)

    def test_budget_exceeded_payload(self):
        e = BudgetExceeded(150, 100)
        assert e.steps == 150
        assert e.budget == 100
        assert "150" in str(e)

    def test_memory_budget_payload(self):
        e = MemoryBudgetExceeded(2048, 1024)
        assert e.used_bytes == 2048
        assert e.budget_bytes == 1024

    def test_catchable_as_repro_error(self):
        with pytest.raises(ReproError):
            raise BudgetExceeded(2, 1)


class TestPartialResult:
    def test_behaves_like_the_count(self):
        p = PartialResult(42, levels_completed=3, reason="deadline")
        assert p == 42
        assert p + 1 == 43
        assert p.matches == 42
        assert p.truncated
        assert p.levels_completed == 3

    def test_default_detail_is_private_dict(self):
        a, b = PartialResult(0), PartialResult(0)
        a.detail["x"] = 1
        assert b.detail == {}

    def test_as_dict_round_trips_payload(self):
        p = PartialResult(7, levels_completed=2, reason="cap",
                          detail={"totals": [3, 4]})
        d = p.as_dict()
        assert d == {
            "matches": 7,
            "levels_completed": 2,
            "truncated": True,
            "reason": "cap",
            "detail": {"totals": [3, 4]},
        }


class TestGuardrailErrors:
    @pytest.mark.parametrize(
        "exc",
        [BudgetExceededError, QueryRefusedError, QueryCancelledError,
         WorkerCrashError],
    )
    def test_guardrail_errors_derive_from_repro_error(self, exc):
        assert issubclass(exc, ReproError)

    @pytest.mark.parametrize(
        "exc", [BudgetExceededError, QueryCancelledError, WorkerCrashError]
    )
    def test_partial_defaults_to_zero(self, exc):
        e = exc("stopped")
        assert isinstance(e.partial, PartialResult)
        assert e.partial == 0

    def test_budget_exceeded_carries_partial(self):
        partial = PartialResult(11, levels_completed=4, reason="deadline")
        e = BudgetExceededError("deadline elapsed", partial)
        assert e.partial is partial
        assert e.partial.matches == 11

    def test_refusal_carries_estimate_and_zero_partial(self):
        e = QueryRefusedError("too big", estimate={"predicted": 1e9})
        assert e.estimate == {"predicted": 1e9}
        assert e.partial == 0
        assert e.partial.reason == "refused"

    def test_worker_crash_names_failed_chunks(self):
        partial = PartialResult(
            5, levels_completed=2, reason="worker crash",
            detail={"failed_chunks": [3]},
        )
        e = WorkerCrashError("chunk 3 lost", partial)
        assert e.partial.detail["failed_chunks"] == [3]

    def test_exported_from_package_root(self):
        import repro

        for name in ("PartialResult", "BudgetExceededError",
                     "QueryRefusedError", "QueryCancelledError",
                     "WorkerCrashError", "Budget"):
            assert hasattr(repro, name)
