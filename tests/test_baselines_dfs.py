"""Tests for the Fractal-like DFS baseline."""

import pytest

from repro.baselines import (
    bfs_motif_count,
    dfs_clique_count,
    dfs_fsm,
    dfs_motif_count,
    dfs_pattern_match,
)
from repro.errors import BudgetExceeded
from repro.graph import erdos_renyi, mico_like
from repro.mining import clique_count, fsm, motif_counts
from repro.pattern import (
    canonical_code,
    generate_clique,
    generate_star,
    pattern_p1,
    pattern_p5,
)
from repro.core import count


class TestAgainstEngine:
    def test_motifs_equal(self, random_graph):
        baseline, _ = dfs_motif_count(random_graph, 3)
        engine = {
            canonical_code(p): n for p, n in motif_counts(random_graph, 3).items()
        }
        assert baseline == engine

    def test_cliques_equal(self, denser_graph):
        baseline, _ = dfs_clique_count(denser_graph, 4)
        assert baseline == clique_count(denser_graph, 4)

    def test_fsm_equal(self):
        g = mico_like(0.15)
        baseline, _ = dfs_fsm(g, 2, 3)
        engine = {
            canonical_code(p): s for p, s in fsm(g, 2, 3).frequent.items()
        }
        assert baseline == engine

    @pytest.mark.parametrize(
        "pattern_fn", [generate_clique, None]
    )
    def test_pattern_match_equal(self, random_graph, pattern_fn):
        patterns = (
            [generate_clique(3)] if pattern_fn else [pattern_p1(), generate_star(4)]
        )
        for p in patterns:
            baseline, _ = dfs_pattern_match(random_graph, p)
            assert baseline == count(random_graph, p)

    def test_labeled_pattern_match(self, labeled_graph):
        p = generate_clique(3)
        p.set_label(0, 0)
        p.set_label(1, 1)
        p.set_label(2, 2)
        baseline, _ = dfs_pattern_match(labeled_graph, p)
        assert baseline == count(labeled_graph, p)


class TestCostProfile:
    def test_dfs_memory_below_bfs(self, denser_graph):
        """Fig 13: DFS holds a stack; BFS holds whole levels."""
        _, dfs_counters = dfs_motif_count(denser_graph, 3)
        _, bfs_counters = bfs_motif_count(denser_graph, 3)
        assert dfs_counters.peak_store_bytes < bfs_counters.peak_store_bytes

    def test_same_exploration_volume_as_bfs(self, random_graph):
        """DFS visits the same embedding tree, just in different order."""
        _, dfs_counters = dfs_motif_count(random_graph, 3)
        _, bfs_counters = bfs_motif_count(random_graph, 3)
        assert dfs_counters.matches_explored == bfs_counters.matches_explored

    def test_pattern_match_explores_more_than_engine(self, denser_graph):
        from repro.core import EngineStats

        p = pattern_p5()
        stats = EngineStats()
        count(denser_graph, p, stats=stats)
        _, counters = dfs_pattern_match(denser_graph, p)
        assert counters.matches_explored > stats.partial_matches

    def test_pattern_match_pays_isomorphism_per_match(self, denser_graph):
        p = generate_clique(3)
        _, counters = dfs_pattern_match(denser_graph, p)
        # One minimality check per raw (automorphic) full match: 6x results.
        assert counters.isomorphism_checks == 6 * counters.result_size


class TestBudgets:
    def test_step_budget(self, denser_graph):
        with pytest.raises(BudgetExceeded):
            dfs_motif_count(denser_graph, 4, step_budget=50)

    def test_pattern_match_budget(self, denser_graph):
        with pytest.raises(BudgetExceeded):
            dfs_pattern_match(denser_graph, pattern_p5(), step_budget=10)
