"""Tests for the numpy-accelerated kernels and the vectorized engine.

Every feature of the pattern matrix — labels, vertex-induced matching,
anti-edges, anti-vertices, callbacks — is parity-fuzzed against the
reference engine (``engine="reference"`` forces it; a bare ``count``
would auto-dispatch right back to the accelerated engine) and, where
cheap enough, against the networkx oracles.
"""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import count, generate_plan, match, match_batches
from repro.core.callbacks import ExplorationControl
from repro.core.accel import (
    AcceleratedEngine,
    AcceleratedGraphView,
    FrontierBatchedEngine,
    accelerated_count,
    frontier_count,
    frontier_start_order,
    np_bounded,
    np_difference,
    np_intersect,
    np_intersect_many,
    shared_view,
)
from repro.core.engine import EngineStats
from repro.errors import MatchingError
from repro.graph import barabasi_albert, erdos_renyi, with_random_labels
from repro.mining.cliques import maximal_clique_pattern
from repro.pattern import Pattern, generate_chain, generate_clique, generate_star
from repro.testing.oracles import nx_count_edge_induced, nx_count_vertex_induced

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


def reference_count(graph, pattern, **kwargs):
    return count(graph, pattern, engine="reference", **kwargs)


# ----------------------------------------------------------------------
# Kernels vs set semantics
# ----------------------------------------------------------------------


class TestKernels:
    @given(sorted_arrays, sorted_arrays)
    def test_intersect_matches_set(self, a, b):
        got = np_intersect(a, b)
        assert got.tolist() == sorted(set(a.tolist()) & set(b.tolist()))

    @given(sorted_arrays, sorted_arrays)
    def test_difference_matches_set(self, a, b):
        got = np_difference(a, b)
        assert got.tolist() == sorted(set(a.tolist()) - set(b.tolist()))

    @given(st.lists(sorted_arrays, max_size=4))
    @settings(max_examples=40)
    def test_intersect_many_matches_set(self, lists):
        got = np_intersect_many(lists)
        if not lists:
            assert got.size == 0
        else:
            expected = set(lists[0].tolist())
            for other in lists[1:]:
                expected &= set(other.tolist())
            assert got.tolist() == sorted(expected)

    @given(
        sorted_arrays,
        st.integers(min_value=-1, max_value=201),
        st.integers(min_value=-1, max_value=201),
    )
    def test_bounded_matches_comprehension(self, a, lo, hi):
        got = np_bounded(a, lo, hi)
        assert got.tolist() == [v for v in a.tolist() if lo < v < hi]

    def test_empty_edges(self):
        empty = np.empty(0, dtype=np.int64)
        one = np.array([3], dtype=np.int64)
        assert np_intersect(empty, one).size == 0
        assert np_difference(empty, one).size == 0
        assert np_difference(one, empty).tolist() == [3]
        assert np_intersect_many([]).size == 0


# ----------------------------------------------------------------------
# Graph view
# ----------------------------------------------------------------------


class TestAcceleratedGraphView:
    def test_neighbors_agree_with_graph(self):
        g = erdos_renyi(50, 0.2, seed=4)
        view = AcceleratedGraphView(g)
        for v in g.vertices():
            assert view.neighbors(v).tolist() == g.neighbors(v)

    def test_memory_accounting(self):
        g = erdos_renyi(50, 0.2, seed=4)
        view = AcceleratedGraphView(g)
        assert view.memory_bytes() >= 8 * 2 * g.num_edges

    def test_label_partition(self):
        g = with_random_labels(erdos_renyi(40, 0.2, seed=9), 3, seed=5)
        view = AcceleratedGraphView(g)
        seen = []
        for lab in range(3):
            arr = view.vertices_with_label(lab)
            assert arr.tolist() == sorted(
                v for v in g.vertices() if g.label(v) == lab
            )
            seen.extend(arr.tolist())
        assert sorted(seen) == list(g.vertices())
        assert view.vertices_with_label(99).size == 0

    def test_unlabeled_partition_empty(self):
        g = erdos_renyi(10, 0.3, seed=1)
        view = AcceleratedGraphView(g)
        assert view.labels is None
        assert view.vertices_with_label(0).size == 0

    def test_from_csr_roundtrip(self):
        g = with_random_labels(erdos_renyi(30, 0.2, seed=2), 2, seed=3)
        view = AcceleratedGraphView(g)
        rebuilt = AcceleratedGraphView.from_csr(*view.csr())
        assert rebuilt.num_vertices == g.num_vertices
        for v in g.vertices():
            assert rebuilt.neighbors(v).tolist() == g.neighbors(v)
        assert rebuilt.labels.tolist() == g.labels()

    def test_shared_view_cached(self):
        g = erdos_renyi(20, 0.3, seed=8)
        ordered, _ = g.degree_ordered()
        assert shared_view(ordered) is shared_view(ordered)


# ----------------------------------------------------------------------
# Accelerated counting == reference engine (unlabeled, edge-induced)
# ----------------------------------------------------------------------


class TestAcceleratedCount:
    @pytest.mark.parametrize(
        "pattern_fn",
        [
            lambda: generate_clique(3),
            lambda: generate_clique(4),
            lambda: generate_chain(4),
            lambda: generate_star(4),
            lambda: Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]),
            lambda: Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]),
        ],
    )
    def test_agrees_with_reference(self, pattern_fn):
        g = barabasi_albert(300, 5, seed=9)
        p = pattern_fn()
        assert accelerated_count(g, p) == reference_count(g, p)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graph_triangles(self, seed):
        g = erdos_renyi(40, 0.25, seed=seed)
        assert accelerated_count(g, generate_clique(3)) == reference_count(
            g, generate_clique(3)
        )

    def test_single_edge_pattern(self):
        g = erdos_renyi(30, 0.2, seed=2)
        assert accelerated_count(g, Pattern.from_edges([(0, 1)])) == g.num_edges

    def test_reusable_view(self):
        g = barabasi_albert(200, 4, seed=3)
        ordered, _ = g.degree_ordered()
        view = AcceleratedGraphView(ordered)
        for p in (generate_clique(3), generate_chain(3)):
            assert accelerated_count(g, p, view=view) == reference_count(g, p)

    def test_foreign_view_is_rebuilt_not_trusted(self):
        g = erdos_renyi(40, 0.3, seed=2)
        other = erdos_renyi(25, 0.2, seed=99)
        foreign = AcceleratedGraphView(other.degree_ordered()[0])
        p = generate_clique(3)
        assert accelerated_count(g, p, view=foreign) == reference_count(g, p)

    def test_rejects_labeled_pattern_on_unlabeled_graph(self):
        g = erdos_renyi(20, 0.3, seed=1)
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 1)
        with pytest.raises(MatchingError):
            accelerated_count(g, p)


# ----------------------------------------------------------------------
# Parity: anti-edges and anti-vertices
# ----------------------------------------------------------------------


class TestAntiConstraintParity:
    def test_chain_with_anti_edge(self):
        g = erdos_renyi(40, 0.25, seed=1)
        p = generate_chain(3)
        p.add_anti_edge(0, 2)
        assert accelerated_count(g, p) == reference_count(g, p)

    def test_square_with_anti_diagonals(self):
        g = erdos_renyi(35, 0.3, seed=13)
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        p.add_anti_edge(0, 2)
        p.add_anti_edge(1, 3)
        assert accelerated_count(g, p) == reference_count(g, p)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_fuzz_anti_edge_paths(self, seed):
        g = erdos_renyi(30, 0.25, seed=seed)
        p = generate_chain(4)
        p.add_anti_edge(0, 3)
        assert accelerated_count(g, p) == reference_count(g, p)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_fuzz_maximal_cliques(self, seed):
        g = erdos_renyi(30, 0.3, seed=seed)
        p = maximal_clique_pattern(3)
        assert accelerated_count(g, p) == reference_count(g, p)

    def test_anti_vertex_star(self):
        g = erdos_renyi(40, 0.2, seed=21)
        p = generate_star(3)
        p.add_anti_vertex([0, 1])
        assert accelerated_count(g, p) == reference_count(g, p)


# ----------------------------------------------------------------------
# Parity: vertex-induced matching (Theorem 3.1 closure)
# ----------------------------------------------------------------------


class TestVertexInducedParity:
    @pytest.mark.parametrize(
        "pattern_fn",
        [
            lambda: generate_chain(3),
            lambda: generate_chain(4),
            lambda: generate_star(4),
            lambda: Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]),
            lambda: Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]),
        ],
    )
    def test_agrees_with_reference_and_oracle(self, pattern_fn):
        g = erdos_renyi(30, 0.25, seed=17)
        p = pattern_fn()
        got = accelerated_count(g, p, edge_induced=False)
        assert got == reference_count(g, p, edge_induced=False)
        assert got == nx_count_vertex_induced(g, p)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_fuzz_vertex_induced_wedges(self, seed):
        g = erdos_renyi(30, 0.3, seed=seed)
        p = generate_star(3)
        assert accelerated_count(g, p, edge_induced=False) == reference_count(
            g, p, edge_induced=False
        )


# ----------------------------------------------------------------------
# Parity: labeled patterns
# ----------------------------------------------------------------------


def _labeled_pattern(structural: Pattern, labels: dict[int, int]) -> Pattern:
    p = structural.copy()
    for u, lab in labels.items():
        p.set_label(u, lab)
    return p


class TestLabeledParity:
    @pytest.mark.parametrize(
        "labels",
        [
            {0: 0},  # partially labeled
            {0: 0, 1: 1},
            {0: 0, 1: 1, 2: 2},  # fully labeled
            {0: 1, 1: 1, 2: 1},  # repeated labels keep symmetry orders
        ],
    )
    def test_labeled_triangle(self, labels):
        g = with_random_labels(erdos_renyi(40, 0.25, seed=7), 3, seed=1)
        p = _labeled_pattern(generate_clique(3), labels)
        assert accelerated_count(g, p) == reference_count(g, p)

    @pytest.mark.parametrize(
        "labels",
        [{0: 0, 1: 1, 2: 0}, {1: 2}, {0: 3, 2: 3}],
    )
    def test_labeled_chain(self, labels):
        g = with_random_labels(erdos_renyi(40, 0.2, seed=11), 4, seed=2)
        p = _labeled_pattern(generate_chain(3), labels)
        assert accelerated_count(g, p) == reference_count(g, p)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=8, deadline=None)
    def test_fuzz_labeled_stars(self, seed):
        g = with_random_labels(erdos_renyi(35, 0.2, seed=seed), 3, seed=seed)
        p = _labeled_pattern(generate_star(3), {0: seed % 3, 2: (seed + 1) % 3})
        assert accelerated_count(g, p) == reference_count(g, p)

    def test_labeled_vertex_induced_combination(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=19), 3, seed=4)
        p = _labeled_pattern(generate_star(3), {0: 1, 1: 0, 2: 2})
        got = accelerated_count(g, p, edge_induced=False)
        assert got == reference_count(g, p, edge_induced=False)

    def test_label_absent_from_graph(self):
        g = with_random_labels(erdos_renyi(20, 0.3, seed=3), 2, seed=5)
        p = _labeled_pattern(generate_clique(3), {0: 7})
        assert accelerated_count(g, p) == 0 == reference_count(g, p)


# ----------------------------------------------------------------------
# Parity: callbacks (batched match materialization)
# ----------------------------------------------------------------------


def _collect_matches(graph, pattern, engine, **kwargs):
    found = []
    match(graph, pattern, callback=lambda m: found.append(m.mapping),
          engine=engine, **kwargs)
    return found


class TestCallbackParity:
    @pytest.mark.parametrize(
        "pattern_fn,kwargs",
        [
            (lambda: generate_clique(3), {}),
            (lambda: generate_chain(4), {}),
            (lambda: generate_star(3), {"edge_induced": False}),
            (lambda: maximal_clique_pattern(3), {}),
        ],
    )
    def test_same_matches_same_order(self, pattern_fn, kwargs):
        g = erdos_renyi(30, 0.25, seed=23)
        p = pattern_fn()
        accel = _collect_matches(g, p, "accel", **kwargs)
        ref = _collect_matches(g, p, "reference", **kwargs)
        assert accel == ref

    def test_labeled_callback_matches(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=29), 3, seed=6)
        p = _labeled_pattern(generate_chain(3), {0: 0, 2: 1})
        assert _collect_matches(g, p, "accel") == _collect_matches(
            g, p, "reference"
        )

    def test_callback_count_equals_count(self):
        g = erdos_renyi(40, 0.2, seed=31)
        p = generate_clique(3)
        assert len(_collect_matches(g, p, "accel")) == count(g, p)


# ----------------------------------------------------------------------
# Frontier-batched engine: parity across the full feature matrix
# ----------------------------------------------------------------------

# Chunk sizes stress the frontier splitter: 1 (every partial alone, the
# worst case for ordering bugs), 2 (splits at odd boundaries), and None
# ("all": the default chunk swallows these graphs whole).
CHUNKS = (1, 2, None)


def _feature_matrix():
    """(name, pattern factory, match kwargs) across every feature class."""
    def anti_square():
        p = Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)])
        p.add_anti_edge(0, 2)
        p.add_anti_edge(1, 3)
        return p

    def anti_chain():
        p = generate_chain(4)
        p.add_anti_edge(0, 3)
        return p

    def anti_vertex_star():
        p = generate_star(3)
        p.add_anti_vertex([0, 1])
        return p

    def labeled_chain():
        return _labeled_pattern(generate_chain(3), {0: 0, 2: 1})

    def labeled_triangle():
        return _labeled_pattern(generate_clique(3), {0: 0, 1: 1, 2: 2})

    return [
        ("clique3", lambda: generate_clique(3), {}),
        ("clique4", lambda: generate_clique(4), {}),
        # single-vertex cores exercise the vectorized tail count
        ("chain4-single-core", lambda: generate_chain(4), {}),
        ("star4-single-core", lambda: generate_star(4), {}),
        ("tailed-triangle", lambda: Pattern.from_edges(
            [(0, 1), (1, 2), (2, 0), (2, 3)]), {}),
        ("square", lambda: Pattern.from_edges(
            [(0, 1), (1, 2), (2, 3), (3, 0)]), {}),
        ("vertex-induced-star", lambda: generate_star(3),
         {"edge_induced": False}),
        ("vertex-induced-chain", lambda: generate_chain(4),
         {"edge_induced": False}),
        ("anti-edge-chain", anti_chain, {}),
        ("anti-edge-square", anti_square, {}),
        ("anti-vertex-star", anti_vertex_star, {}),
        ("maximal-clique", lambda: maximal_clique_pattern(3), {}),
        ("labeled-chain", labeled_chain, {}),
        ("labeled-triangle", labeled_triangle, {}),
        ("no-symmetry-clique", lambda: generate_clique(3),
         {"symmetry_breaking": False}),
    ]


FEATURE_MATRIX = _feature_matrix()


def _graph_for(name, seed):
    if name.startswith("labeled"):
        return with_random_labels(erdos_renyi(32, 0.25, seed=seed), 3, seed=seed)
    return erdos_renyi(32, 0.25, seed=seed)


class TestFrontierBatchedParity:
    @pytest.mark.parametrize("chunk", CHUNKS)
    @pytest.mark.parametrize(
        "name,pattern_fn,kwargs",
        FEATURE_MATRIX,
        ids=[name for name, _, _ in FEATURE_MATRIX],
    )
    def test_counts_match_reference(self, name, pattern_fn, kwargs, chunk):
        g = _graph_for(name, seed=11)
        p = pattern_fn()
        got = count(g, p, engine="accel-batch", frontier_chunk=chunk, **kwargs)
        assert got == reference_count(g, p, **kwargs)

    @pytest.mark.parametrize("chunk", CHUNKS)
    @pytest.mark.parametrize(
        "name,pattern_fn,kwargs",
        FEATURE_MATRIX,
        ids=[name for name, _, _ in FEATURE_MATRIX],
    )
    def test_callbacks_match_reference_in_order(
        self, name, pattern_fn, kwargs, chunk
    ):
        """Match *sequences* (not just multisets) are engine-independent."""
        g = _graph_for(name, seed=13)
        p = pattern_fn()
        batched = _collect_matches(
            g, p, "accel-batch", frontier_chunk=chunk, **kwargs
        )
        assert batched == _collect_matches(g, p, "reference", **kwargs)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=15, deadline=None)
    def test_fuzz_counts_across_features(self, seed):
        g = erdos_renyi(28, 0.25, seed=seed)
        gl = with_random_labels(erdos_renyi(28, 0.25, seed=seed), 3, seed=seed)
        chunk = [1, 2, None][seed % 3]
        for name, pattern_fn, kwargs in FEATURE_MATRIX:
            graph = gl if name.startswith("labeled") else g
            p = pattern_fn()
            got = count(
                graph, p, engine="accel-batch", frontier_chunk=chunk, **kwargs
            )
            assert got == reference_count(graph, p, **kwargs), name

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_fuzz_callback_order(self, seed):
        g = erdos_renyi(24, 0.3, seed=seed)
        for pattern_fn in (
            lambda: generate_clique(3),
            lambda: generate_chain(4),
            lambda: maximal_clique_pattern(3),
        ):
            p = pattern_fn()
            batched = _collect_matches(
                g, p, "accel-batch", frontier_chunk=(seed % 3) or None
            )
            assert batched == _collect_matches(g, p, "reference")

    def test_count_with_callback_equals_count_only(self):
        g = erdos_renyi(40, 0.2, seed=19)
        p = generate_chain(3)  # single-vertex core: vectorized tail count
        assert count(g, p, engine="accel-batch") == len(
            _collect_matches(g, p, "accel-batch")
        )

    def test_frontier_count_helper(self):
        g = barabasi_albert(200, 4, seed=3)
        for p in (generate_clique(3), generate_chain(3)):
            assert frontier_count(g, p) == reference_count(g, p)

    def test_rejects_labeled_pattern_on_unlabeled_graph(self):
        g = erdos_renyi(20, 0.3, seed=1)
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 1)
        with pytest.raises(MatchingError):
            frontier_count(g, p)

    def test_rejects_on_match_and_on_batch_together(self):
        g = erdos_renyi(20, 0.3, seed=2)
        ordered, _ = g.degree_ordered()
        engine = FrontierBatchedEngine(shared_view(ordered))
        with pytest.raises(ValueError):
            engine.run(
                generate_plan(generate_clique(3)),
                on_match=lambda m: None,
                on_batch=lambda arr: None,
            )

    def test_on_batch_rows_match_reference_multiset(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=23), 3, seed=5)
        p = _labeled_pattern(generate_chain(3), {0: 0})
        rows = []
        total = match_batches(g, p, lambda arr: rows.extend(
            tuple(r) for r in arr.tolist()
        ))
        ref = _collect_matches(g, p, "reference")
        assert total == len(ref)
        assert sorted(rows) == sorted(ref)


class TestFrontierStartOrder:
    def test_unlabeled_is_hub_first(self):
        g = erdos_renyi(25, 0.2, seed=3)
        ordered, _ = g.degree_ordered()
        view = shared_view(ordered)
        plan = generate_plan(generate_clique(3))
        starts = frontier_start_order(view.labels, view.num_vertices, plan)
        assert starts.tolist() == list(range(view.num_vertices - 1, -1, -1))

    def test_labeled_filters_to_top_labels(self):
        g = with_random_labels(erdos_renyi(40, 0.25, seed=5), 3, seed=7)
        ordered, _ = g.degree_ordered()
        view = shared_view(ordered)
        p = _labeled_pattern(generate_clique(3), {0: 1, 1: 1, 2: 1})
        plan = generate_plan(p)
        starts = frontier_start_order(view.labels, view.num_vertices, plan)
        assert starts.size > 0
        assert all(view.labels[v] == 1 for v in starts.tolist())
        # hub-first order is preserved within the filtered set
        assert starts.tolist() == sorted(starts.tolist(), reverse=True)

    def test_sliced_frontier_partitions_the_count(self):
        g = with_random_labels(erdos_renyi(50, 0.25, seed=9), 2, seed=11)
        ordered, _ = g.degree_ordered()
        view = shared_view(ordered)
        p = _labeled_pattern(generate_chain(3), {0: 0, 1: 1, 2: 0})
        plan = generate_plan(p)
        starts = frontier_start_order(view.labels, view.num_vertices, plan)
        total = FrontierBatchedEngine(view).run(plan, count_only=True)
        sliced = sum(
            FrontierBatchedEngine(view).run(
                plan, start_vertices=starts[off::3], count_only=True
            )
            for off in range(3)
        )
        assert sliced == total == reference_count(g, p)


# ----------------------------------------------------------------------
# Engine dispatch rules (repro.core.api)
# ----------------------------------------------------------------------


class TestDispatch:
    def test_auto_with_stats_uses_reference(self):
        g = erdos_renyi(30, 0.25, seed=37)
        stats = EngineStats()
        n = count(g, generate_clique(3), stats=stats)
        assert n == count(g, generate_clique(3))
        assert stats.partial_matches > 0  # reference engine ran

    def test_force_accel_with_stats_raises(self):
        g = erdos_renyi(20, 0.3, seed=1)
        with pytest.raises(MatchingError):
            count(g, generate_clique(3), stats=EngineStats(), engine="accel")

    def test_unknown_engine_rejected(self):
        g = erdos_renyi(10, 0.3, seed=1)
        with pytest.raises(ValueError):
            count(g, generate_clique(3), engine="warp-drive")

    def test_forced_engines_agree(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=41), 3, seed=7)
        p = _labeled_pattern(generate_star(3), {0: 1})
        assert count(g, p, engine="accel") == count(g, p, engine="reference")

    def test_engine_runs_against_oracle(self):
        g = erdos_renyi(25, 0.3, seed=43)
        p = generate_chain(3)
        assert count(g, p, engine="accel") == nx_count_edge_induced(g, p)

    def test_accel_preferred_heuristic(self):
        from repro.core import accel_preferred

        dense, _ = erdos_renyi(300, 0.6, seed=51).degree_ordered()
        sparse, _ = erdos_renyi(300, 0.05, seed=51).degree_ordered()
        clique_plan = generate_plan(generate_clique(3))
        chain_plan = generate_plan(generate_chain(3))
        assert accel_preferred(dense, clique_plan)  # dense + real core
        assert not accel_preferred(sparse, clique_plan)  # sparse graph
        # single-vertex core (tail-count dominated) stays on the interpreter
        assert not accel_preferred(dense, chain_plan)

    def test_batch_preferred_heuristic(self):
        from repro.core import batch_preferred

        moderate, _ = erdos_renyi(300, 0.05, seed=51).degree_ordered()
        forest, _ = erdos_renyi(300, 0.002, seed=51).degree_ordered()
        clique_plan = generate_plan(generate_clique(3))
        chain_plan = generate_plan(generate_chain(3))
        # no density floor beyond near-forests, no core-size exclusion
        assert batch_preferred(moderate, clique_plan)
        assert batch_preferred(moderate, chain_plan)
        assert not batch_preferred(forest, clique_plan)

    def test_force_accel_batch_with_stats_raises(self):
        g = erdos_renyi(20, 0.3, seed=1)
        with pytest.raises(MatchingError):
            count(g, generate_clique(3), stats=EngineStats(),
                  engine="accel-batch")

    def test_forced_batch_agrees_everywhere(self):
        g = with_random_labels(erdos_renyi(30, 0.25, seed=41), 3, seed=7)
        p = _labeled_pattern(generate_star(3), {0: 1})
        assert count(g, p, engine="accel-batch") == count(
            g, p, engine="reference"
        )

    def test_batch_engine_runs_against_oracle(self):
        g = erdos_renyi(25, 0.3, seed=43)
        p = generate_chain(3)
        assert count(g, p, engine="accel-batch") == nx_count_edge_induced(g, p)


# ----------------------------------------------------------------------
# Controls on the vectorized engines (guardrail dispatch parity)
# ----------------------------------------------------------------------


class TestControlDispatch:
    """Control-bearing calls qualify for the vectorized engines.

    The engines poll the control cooperatively (per start / per core
    match in ``accel``, per frontier block and emitted match in
    ``accel-batch``), so a control must change neither dispatch nor —
    while it stays un-stopped — the matches or their order.
    """

    def test_control_does_not_change_dispatch(self):
        from repro.core.session import _dispatch_engine

        g, _ = erdos_renyi(300, 0.05, seed=51).degree_ordered()
        for plan in (generate_plan(generate_clique(3)),
                     generate_plan(generate_chain(3))):
            bare = _dispatch_engine("auto", None, None, None, g, plan)
            controlled = _dispatch_engine(
                "auto", ExplorationControl(), None, None, g, plan
            )
            assert controlled == bare

    @pytest.mark.parametrize("engine", ["accel", "accel-batch"])
    def test_forced_engine_accepts_control(self, engine):
        from repro.core.session import MiningSession

        g = erdos_renyi(30, 0.25, seed=23)
        p = generate_clique(3)
        session = MiningSession(g)
        n = session.count(p, engine=engine, control=ExplorationControl())
        assert n == session.count(p, engine="reference")

    def test_callback_order_parity_with_control(self):
        g = erdos_renyi(30, 0.25, seed=23)
        p = generate_clique(3)
        ref = _collect_matches(g, p, "reference")
        accel = _collect_matches(
            g, p, "accel", control=ExplorationControl()
        )
        assert accel == ref

    def test_stopped_control_terminates_accel_early(self):
        g = erdos_renyi(30, 0.25, seed=23)
        p = generate_clique(3)
        full = count(g, p, engine="reference")
        assert full > 1
        control = ExplorationControl()
        seen = []

        def stop_now(m):
            seen.append(m.mapping)
            control.stop()

        match(g, p, stop_now, control=control, engine="accel")
        assert 1 <= len(seen) < full


# ----------------------------------------------------------------------
# Direct AcceleratedEngine API (start-vertex slicing for the runtime)
# ----------------------------------------------------------------------


class TestEngineSlicing:
    def test_strided_starts_partition_the_count(self):
        g = erdos_renyi(50, 0.2, seed=47)
        ordered, _ = g.degree_ordered()
        plan = generate_plan(generate_clique(3))
        view = shared_view(ordered)
        total = AcceleratedEngine(view).run(plan, count_only=True)
        strided = sum(
            AcceleratedEngine(view).run(
                plan,
                start_vertices=range(ordered.num_vertices - 1 - off, -1, -3),
                count_only=True,
            )
            for off in range(3)
        )
        assert strided == total == reference_count(g, generate_clique(3))
