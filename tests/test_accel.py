"""Tests for the numpy-accelerated kernels and counting engine."""

from __future__ import annotations

import numpy as np
import pytest
from hypothesis import given, settings
from hypothesis import strategies as st

from repro.core import count
from repro.core.accel import (
    AcceleratedGraphView,
    accelerated_count,
    np_bounded,
    np_difference,
    np_intersect,
    np_intersect_many,
)
from repro.errors import MatchingError
from repro.graph import barabasi_albert, erdos_renyi
from repro.pattern import Pattern, generate_chain, generate_clique, generate_star

sorted_arrays = st.lists(
    st.integers(min_value=0, max_value=200), max_size=60
).map(lambda xs: np.array(sorted(set(xs)), dtype=np.int64))


# ----------------------------------------------------------------------
# Kernels vs set semantics
# ----------------------------------------------------------------------


class TestKernels:
    @given(sorted_arrays, sorted_arrays)
    def test_intersect_matches_set(self, a, b):
        got = np_intersect(a, b)
        assert got.tolist() == sorted(set(a.tolist()) & set(b.tolist()))

    @given(sorted_arrays, sorted_arrays)
    def test_difference_matches_set(self, a, b):
        got = np_difference(a, b)
        assert got.tolist() == sorted(set(a.tolist()) - set(b.tolist()))

    @given(st.lists(sorted_arrays, max_size=4))
    @settings(max_examples=40)
    def test_intersect_many_matches_set(self, lists):
        got = np_intersect_many(lists)
        if not lists:
            assert got.size == 0
        else:
            expected = set(lists[0].tolist())
            for other in lists[1:]:
                expected &= set(other.tolist())
            assert got.tolist() == sorted(expected)

    @given(
        sorted_arrays,
        st.integers(min_value=-1, max_value=201),
        st.integers(min_value=-1, max_value=201),
    )
    def test_bounded_matches_comprehension(self, a, lo, hi):
        got = np_bounded(a, lo, hi)
        assert got.tolist() == [v for v in a.tolist() if lo < v < hi]

    def test_empty_edges(self):
        empty = np.empty(0, dtype=np.int64)
        one = np.array([3], dtype=np.int64)
        assert np_intersect(empty, one).size == 0
        assert np_difference(empty, one).size == 0
        assert np_difference(one, empty).tolist() == [3]
        assert np_intersect_many([]).size == 0


# ----------------------------------------------------------------------
# Graph view
# ----------------------------------------------------------------------


class TestAcceleratedGraphView:
    def test_neighbors_agree_with_graph(self):
        g = erdos_renyi(50, 0.2, seed=4)
        view = AcceleratedGraphView(g)
        for v in g.vertices():
            assert view.neighbors(v).tolist() == g.neighbors(v)

    def test_memory_accounting(self):
        g = erdos_renyi(50, 0.2, seed=4)
        view = AcceleratedGraphView(g)
        assert view.memory_bytes() >= 8 * 2 * g.num_edges


# ----------------------------------------------------------------------
# Accelerated counting == reference engine
# ----------------------------------------------------------------------


class TestAcceleratedCount:
    @pytest.mark.parametrize(
        "pattern_fn",
        [
            lambda: generate_clique(3),
            lambda: generate_clique(4),
            lambda: generate_chain(4),
            lambda: generate_star(4),
            lambda: Pattern.from_edges([(0, 1), (1, 2), (2, 0), (2, 3)]),
            lambda: Pattern.from_edges([(0, 1), (1, 2), (2, 3), (3, 0)]),
        ],
    )
    def test_agrees_with_reference(self, pattern_fn):
        g = barabasi_albert(300, 5, seed=9)
        p = pattern_fn()
        assert accelerated_count(g, p) == count(g, p)

    @given(st.integers(min_value=0, max_value=10_000))
    @settings(max_examples=10, deadline=None)
    def test_random_graph_triangles(self, seed):
        g = erdos_renyi(40, 0.25, seed=seed)
        assert accelerated_count(g, generate_clique(3)) == count(
            g, generate_clique(3)
        )

    def test_rejects_anti_edges(self):
        g = erdos_renyi(20, 0.3, seed=1)
        p = generate_chain(3)
        p.add_anti_edge(0, 2)
        with pytest.raises(MatchingError):
            accelerated_count(g, p)

    def test_rejects_labels(self):
        g = erdos_renyi(20, 0.3, seed=1)
        p = Pattern.from_edges([(0, 1)])
        p.set_label(0, 1)
        with pytest.raises(MatchingError):
            accelerated_count(g, p)

    def test_single_edge_pattern(self):
        g = erdos_renyi(30, 0.2, seed=2)
        assert accelerated_count(g, Pattern.from_edges([(0, 1)])) == g.num_edges

    def test_reusable_view(self):
        g = barabasi_albert(200, 4, seed=3)
        ordered, _ = g.degree_ordered()
        view = AcceleratedGraphView(ordered)
        for p in (generate_clique(3), generate_chain(3)):
            assert accelerated_count(g, p, view=view) == count(g, p)
