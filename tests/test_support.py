"""Tests for Bitset and MNI Domain (support computation)."""

from hypothesis import given, strategies as st

from repro.mining import Bitset, Domain

values = st.lists(st.integers(min_value=0, max_value=500), max_size=50)


class TestBitset:
    @given(values)
    def test_membership_and_len(self, xs):
        b = Bitset(xs)
        assert len(b) == len(set(xs))
        for x in xs:
            assert x in b
        assert -1 not in b

    @given(values, values)
    def test_or_is_union(self, xs, ys):
        assert (Bitset(xs) | Bitset(ys)).to_list() == sorted(set(xs) | set(ys))

    @given(values, values)
    def test_and_is_intersection(self, xs, ys):
        assert (Bitset(xs) & Bitset(ys)).to_list() == sorted(set(xs) & set(ys))

    @given(values)
    def test_ior_in_place(self, xs):
        b = Bitset()
        b |= Bitset(xs)
        assert b == Bitset(xs)

    def test_add(self):
        b = Bitset()
        b.add(3)
        b.add(3)
        assert len(b) == 1
        assert b.to_list() == [3]

    def test_memory_bytes_grows(self):
        small = Bitset([1])
        large = Bitset([10_000])
        assert large.memory_bytes() > small.memory_bytes()

    def test_equality_hash(self):
        assert Bitset([1, 2]) == Bitset([2, 1])
        assert hash(Bitset([5])) == hash(Bitset([5]))


class TestDomain:
    def test_support_is_min_domain_size(self):
        d = Domain(2)
        d.update([0, 10])
        d.update([1, 10])
        d.update([2, 10])
        assert d.support() == 1  # vertex 1 only ever maps to 10

    def test_update_ignores_negative(self):
        d = Domain(2)
        d.update([3, -1])
        assert len(d.vertex_domain(0)) == 1
        assert len(d.vertex_domain(1)) == 0

    def test_orbit_merging(self):
        # Symmetric pattern (both vertices one orbit): canonical matches
        # only ever put the smaller data vertex first, but the full domain
        # of each vertex is the union across the orbit.
        d = Domain(2, orbits=[[0, 1]])
        d.update([0, 5])
        d.update([1, 5])
        # raw domains: {0,1} and {5}; orbit-merged: {0,1,5} for both
        assert d.support() == 3

    def test_trivial_orbits_no_merge(self):
        d = Domain(2, orbits=[[0], [1]])
        d.update([0, 5])
        d.update([1, 5])
        assert d.support() == 1

    def test_merge_from_unions_and_clears_counts(self):
        a, b = Domain(1), Domain(1)
        a.update([1])
        b.update([2])
        a.merge_from(b)
        assert a.vertex_domain(0).to_list() == [1, 2]
        assert a.writes == 2

    def test_writes_counted(self):
        d = Domain(3)
        d.update([1, 2, 3])
        d.update([1, 2, 3])
        assert d.writes == 6

    def test_empty_domain_support_zero(self):
        assert Domain(2).support() == 0
        assert Domain(0).support() == 0

    def test_memory_bytes(self):
        d = Domain(2)
        d.update([100, 200])
        assert d.memory_bytes() > 0
