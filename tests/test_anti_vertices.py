"""Anti-vertex semantics (§4.3): strict absence of common neighbors."""

from itertools import permutations

from repro.core import count, match
from repro.graph import DataGraph, erdos_renyi, from_edges, complete_graph
from repro.pattern import Pattern, pattern_p7


def brute_force_anti_vertex_count(graph: DataGraph, p: Pattern) -> int:
    """Oracle for patterns with anti-vertices: map regular vertices
    injectively, verify edges + regular anti-edges, then verify each
    anti-vertex constraint (no common neighbor outside the match)."""
    from repro.pattern import automorphisms

    regular = p.regular_vertices()
    anti = p.anti_vertices()
    autos = automorphisms(p)
    # Count distinct regular-assignments, then collapse by the automorphism
    # action restricted to regular vertices.
    valid = set()
    for assignment in permutations(range(graph.num_vertices), len(regular)):
        m = dict(zip(regular, assignment))
        ok = all(graph.has_edge(m[u], m[v]) for u, v in p.edges())
        if ok:
            for u, v in p.anti_edges():
                if u in m and v in m and graph.has_edge(m[u], m[v]):
                    ok = False
                    break
        if ok:
            matched = set(m.values())
            for a in anti:
                nbrs = [m[x] for x in p.anti_neighbors(a)]
                common = set(graph.neighbors(nbrs[0]))
                for x in nbrs[1:]:
                    common &= set(graph.neighbors(x))
                if common - matched:
                    ok = False
                    break
        if ok:
            valid.add(tuple(m[u] for u in regular))
    # collapse automorphic duplicates
    reps = set()
    for assignment in valid:
        m = dict(zip(regular, assignment))
        images = []
        for sigma in autos:
            image = tuple(m[sigma[u]] for u in regular)
            images.append(image)
        reps.add(min(images))
    return len(reps)


class TestAntiVertexSemantics:
    def test_p7_maximal_triangles(self):
        g = erdos_renyi(12, 0.4, seed=1)
        assert count(g, pattern_p7()) == brute_force_anti_vertex_count(
            g, pattern_p7()
        )

    def test_pc_no_common_neighbor_edge(self):
        # pc in Figure 3: an edge whose endpoints have no common neighbor
        # (triangle-free edge).
        pc = Pattern.from_edges([(0, 1)])
        pc.add_anti_vertex([0, 1])
        g = erdos_renyi(12, 0.35, seed=2)
        assert count(g, pc) == brute_force_anti_vertex_count(g, pc)

    def test_pd_single_neighbor_anti_vertex(self):
        # pd-style: wedge whose center has NO neighbors outside the match.
        pd = Pattern.from_edges([(0, 1), (1, 2)])
        pd.add_anti_vertex([1])
        g = erdos_renyi(10, 0.35, seed=3)
        assert count(g, pd) == brute_force_anti_vertex_count(g, pd)

    def test_pe_exactly_one_mutual_friend(self):
        # pe: triangle where the two 'friends' (0, 2) have only vertex 1 as
        # common neighbor: anti-vertex adjacent to 0 and 2.
        pe = Pattern.from_edges([(0, 1), (1, 2), (0, 2)])
        pe.add_anti_vertex([0, 2])
        g = erdos_renyi(12, 0.35, seed=4)
        assert count(g, pe) == brute_force_anti_vertex_count(g, pe)

    def test_pf_two_anti_vertices(self):
        pf = Pattern.from_edges([(0, 1), (1, 2)])
        pf.add_anti_vertex([0, 2])
        pf.add_anti_vertex([1])
        g = erdos_renyi(10, 0.35, seed=5)
        assert count(g, pf) == brute_force_anti_vertex_count(g, pf)

    def test_anti_vertex_on_complete_graph_matches_nothing(self):
        # K_6: every triangle is in a K_4, so maximal triangles = 0.
        assert count(complete_graph(6), pattern_p7()) == 0

    def test_isolated_triangle_is_maximal(self):
        g = from_edges([(0, 1), (1, 2), (0, 2)], num_vertices=5)
        assert count(g, pattern_p7()) == 1

    def test_paper_symmetry_example(self):
        """§4.3's example: in the Figure 6 graph, pe-style matching of
        triangle {v1, v4, v6} must produce matches for both orientations
        that the anti-vertex distinguishes."""
        # Figure 6 graph, 0-indexed: v1..v7 -> 0..6
        g = from_edges(
            [(0, 2), (0, 3), (0, 5), (1, 2), (2, 3), (2, 4), (3, 5),
             (3, 4), (4, 6), (3, 6)],
            name="fig6-like",
        )
        pe = Pattern.from_edges([(0, 1), (1, 2), (0, 2)])
        pe.add_anti_vertex([0, 2])
        got = count(g, pe)
        expected = brute_force_anti_vertex_count(g, pe)
        assert got == expected

    def test_callbacks_see_constraint_satisfied(self):
        g = erdos_renyi(14, 0.35, seed=6)
        p = pattern_p7()

        def verify(m):
            a, b, c = (m[u] for u in range(3))
            common = (
                set(g.neighbors(a)) & set(g.neighbors(b)) & set(g.neighbors(c))
            )
            assert not (common - {a, b, c})

        match(g, p, callback=verify)
